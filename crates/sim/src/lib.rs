//! Cycle-level simulator of the DPU-v2 architecture template (§III).
//!
//! The simulator executes a compiled [`Program`] on a software model of the
//! micro-architecture:
//!
//! - `B` register banks of `R` registers, each with a valid bit and a
//!   priority-encoder **automatic write-address generator** (§III-B,
//!   Fig. 5(d)): the instruction stream never names write addresses, the
//!   bank picks the lowest empty register itself;
//! - `T` PE trees of depth `D` with per-PE opcodes (add/mul/sub/div/
//!   min/max/bypass), registered outputs and a `D+1`-stage pipeline:
//!   `exec` writebacks land `D` cycles after issue;
//! - an input crossbar (with broadcast) and the configurable output
//!   interconnect of Fig. 6;
//! - a vector data memory of `B`-word rows (Fig. 5(b)).
//!
//! Timing is deterministic and must agree with the compiler's finalize
//! replay: one instruction issues per cycle, and the simulator *checks*
//! rather than tolerates hazards — reading an empty register, clashing
//! writebacks or bank overflow abort the run ([`SimError`]). Functional
//! results are compared against the reference evaluator by
//! [`run_and_verify`], which is the end-to-end proof that compiler and
//! architecture agree.
//!
//! # Example
//!
//! ```
//! use dpu_dag::{DagBuilder, Op};
//! use dpu_isa::ArchConfig;
//! use dpu_compiler::{compile, CompileOptions};
//! use dpu_sim::run_and_verify;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let x = b.input();
//! let y = b.input();
//! let s = b.node(Op::Add, &[x, y])?;
//! b.node(Op::Mul, &[s, s])?;
//! let dag = b.finish()?;
//! let cfg = ArchConfig::new(2, 8, 16)?;
//! let compiled = compile(&dag, &cfg, &CompileOptions::default())?;
//! let report = run_and_verify(&compiled, &[1.5, 2.5])?;
//! assert!(report.verified);
//! assert!(report.result.cycles > 0);
//! # Ok(())
//! # }
//! ```

use dpu_compiler::Compiled;
use dpu_dag::eval;
use dpu_isa::{encode, ArchConfig, Instr, PeOpcode, Program};

use serde::{Deserialize, Serialize};

mod decoded;
pub use decoded::{run_decoded_on, DecodedProgram};

/// Simulation errors — every variant indicates a compiler bug or a corrupt
/// program, never a data-dependent condition.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A register was read while its valid bit was 0.
    ReadInvalid {
        /// Bank read.
        bank: u32,
        /// Address read.
        addr: u32,
        /// Issue cycle.
        cycle: u64,
    },
    /// A bank received two writes in one cycle (single write port).
    WritePortClash {
        /// The bank.
        bank: u32,
        /// The cycle.
        cycle: u64,
    },
    /// A bank had no empty register for an incoming write.
    BankOverflow {
        /// The bank.
        bank: u32,
        /// The cycle.
        cycle: u64,
    },
    /// A `load`/`store` addressed a row outside the data memory.
    RowOutOfRange {
        /// The row.
        row: u32,
    },
    /// An exec writeback selected an idle PE.
    IdlePeWriteback {
        /// The bank latching the idle output.
        bank: u32,
    },
    /// A packed instruction image failed to decode.
    BadImage {
        /// Decoder diagnostic.
        detail: String,
    },
    /// A batch run was requested with zero cores.
    NoCores,
    /// A batch run was requested with an empty batch.
    EmptyBatch,
    /// The simulator's outputs disagree with the reference evaluator.
    Mismatch {
        /// Index of the first mismatching output.
        index: usize,
        /// Simulator value.
        got: f32,
        /// Reference value.
        expected: f32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ReadInvalid { bank, addr, cycle } => {
                write!(f, "cycle {cycle}: read of empty register {bank}:{addr}")
            }
            SimError::WritePortClash { bank, cycle } => {
                write!(f, "cycle {cycle}: two writes to bank {bank}")
            }
            SimError::BankOverflow { bank, cycle } => {
                write!(f, "cycle {cycle}: bank {bank} overflowed")
            }
            SimError::RowOutOfRange { row } => write!(f, "data row {row} out of range"),
            SimError::IdlePeWriteback { bank } => {
                write!(f, "bank {bank} latches an idle PE output")
            }
            SimError::BadImage { detail } => write!(f, "packed image: {detail}"),
            SimError::NoCores => write!(f, "batch run requested with zero cores"),
            SimError::EmptyBatch => write!(f, "batch run requested with an empty batch"),
            SimError::Mismatch {
                index,
                got,
                expected,
            } => {
                write!(f, "output {index}: simulated {got}, reference {expected}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Activity counters feeding the energy model (`dpu-energy`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activity {
    /// Register-file reads (one per distinct bank read per instruction).
    pub reg_reads: u64,
    /// Register-file writes.
    pub reg_writes: u64,
    /// Data-memory row reads (loads).
    pub mem_reads: u64,
    /// Data-memory row writes (stores).
    pub mem_writes: u64,
    /// Arithmetic PE evaluations (excluding bypasses).
    pub pe_arith_ops: u64,
    /// Bypass PE evaluations.
    pub pe_bypass_ops: u64,
    /// `exec` instructions issued.
    pub execs: u64,
    /// Crossbar traversals (port reads routed through the input crossbar
    /// plus copy moves).
    pub crossbar_hops: u64,
    /// Instruction bits fetched (cycles × IL).
    pub instr_bits_fetched: u64,
}

impl Activity {
    /// Accumulates `other` into `self` — used by batch/serving paths that
    /// aggregate per-run counters into one report.
    pub fn absorb(&mut self, other: &Activity) {
        // Exhaustive destructuring (no `..`): adding a counter to the
        // struct without aggregating it here is a compile error.
        let Activity {
            reg_reads,
            reg_writes,
            mem_reads,
            mem_writes,
            pe_arith_ops,
            pe_bypass_ops,
            execs,
            crossbar_hops,
            instr_bits_fetched,
        } = *other;
        self.reg_reads += reg_reads;
        self.reg_writes += reg_writes;
        self.mem_reads += mem_reads;
        self.mem_writes += mem_writes;
        self.pe_arith_ops += pe_arith_ops;
        self.pe_bypass_ops += pe_bypass_ops;
        self.execs += execs;
        self.crossbar_hops += crossbar_hops;
        self.instr_bits_fetched += instr_bits_fetched;
    }
}

/// Result of one program run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Total cycles including the pipeline drain.
    pub cycles: u64,
    /// Output values read back from data memory, one per
    /// [`dpu_compiler::DataLayout::output_slots`] entry.
    pub outputs: Vec<f32>,
    /// Activity counters.
    pub activity: Activity,
    /// Arithmetic DAG operations; operations / time gives the GOPS metric
    /// the paper reports (DAG nodes, not PE activations).
    pub dag_ops: u64,
}

/// The micro-architectural state.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: ArchConfig,
    /// Register banks: `banks × regs` of optional values (None = invalid).
    banks: Vec<Vec<Option<f32>>>,
    /// Data memory as rows of `B` words.
    data: Vec<Vec<f32>>,
    /// Rows written since the last reset. [`Machine::reset`] re-zeroes
    /// only these, which keeps reset O(touched) instead of O(memory) —
    /// DPU-v2 (L) carries megabytes of data memory, and the serving hot
    /// path resets per request.
    dirty_rows: Vec<u32>,
    dirty: Vec<bool>,
    /// In-flight exec writebacks as a ring of `D+1` slots indexed by
    /// `cycle % (D+1)`: an `exec` issued at cycle `c` lands at the end of
    /// cycle `c + D`, so at most `D+1` distinct cycles ever hold
    /// writebacks and slot reuse cannot collide (the slot for `c + D` was
    /// drained at cycle `c - 1`). This replaces the per-machine
    /// `HashMap<u64, Vec<_>>` the hot path used to hash into on every
    /// `exec` and every drain probe — the ring is two array indexings and
    /// keeps each slot's `Vec` capacity warm across requests.
    pending: Vec<Vec<(u32, f32)>>,
    /// Writebacks currently in flight across all ring slots (the drain
    /// loops run until this reaches zero).
    pending_count: usize,
    cycle: u64,
    activity: Activity,
    /// Reusable per-machine scratch for [`Machine::step`]'s hot path, so
    /// steady-state execution allocates nothing per `exec`/`load`. Each
    /// buffer is cleared and resized at its point of use (cheap once
    /// capacity is warm); none carries state across instructions, so
    /// [`Machine::reset`] does not need to touch them.
    scratch: Scratch,
}

/// Per-machine scratch buffers (see the field doc on [`Machine`]).
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Crossbar port values of the current `exec` (one per port).
    ports: Vec<Option<f32>>,
    /// Broadcast-dedup memo, one slot per bank: the register fetched from
    /// each bank this `exec`, stamped with [`Scratch::epoch`]. A stale
    /// stamp means "not fetched this exec", so the memo is reused across
    /// cycles (and requests) without ever being cleared — replacing the
    /// linear re-scan of an already-fetched list per port, which made
    /// operand fetch O(reads²) per `exec`. `ExecInstr::validate` permits
    /// one read address per bank, so a single slot per bank suffices; the
    /// address is still checked so hand-built (unvalidated) instructions
    /// keep exact `(bank, addr)` dedup semantics.
    fetch_epoch: Vec<u64>,
    fetch_addr: Vec<u32>,
    fetch_val: Vec<f32>,
    /// Monotonic `exec` counter stamping [`Scratch::fetch_epoch`].
    epoch: u64,
    /// Per-layer PE outputs of the current `exec`.
    layers: Vec<Vec<Option<f32>>>,
    /// Staging copy of a data row during `load` (the row must be copied
    /// out before writes because the priority-encoder write borrows the
    /// register file mutably).
    row: Vec<f32>,
    /// [`Machine::run_decoded`] value array (ports + PE outputs).
    vals: Vec<f32>,
    /// [`Machine::run_decoded`] immediate-write banks of the current
    /// cycle (doubles as the write-port conflict set when landing).
    imm: Vec<u32>,
    /// [`Machine::run_decoded`] staging buffer for `copy.k` moves.
    staged: Vec<(u32, f32)>,
}

impl Machine {
    /// Creates a machine with all registers invalid and zeroed data memory.
    pub fn new(cfg: ArchConfig) -> Self {
        Machine {
            cfg,
            banks: vec![vec![None; cfg.regs_per_bank as usize]; cfg.banks as usize],
            data: vec![vec![0.0; cfg.banks as usize]; cfg.data_mem_rows as usize],
            dirty_rows: Vec::new(),
            dirty: vec![false; cfg.data_mem_rows as usize],
            pending: vec![Vec::new(); cfg.depth as usize + 1],
            pending_count: 0,
            cycle: 0,
            activity: Activity::default(),
            scratch: Scratch::default(),
        }
    }

    /// Marks a data row as written since the last reset.
    fn mark_dirty(&mut self, row: u32) {
        if !self.dirty[row as usize] {
            self.dirty[row as usize] = true;
            self.dirty_rows.push(row);
        }
    }

    /// Returns the machine to its power-on state — all registers invalid,
    /// data memory zeroed, no in-flight writebacks, cycle 0, activity
    /// cleared — **without reallocating** the register file or data
    /// memory. Serving paths call this between requests so per-request
    /// allocation disappears from the hot path; a reset machine behaves
    /// identically to a fresh [`Machine::new`] with the same config.
    pub fn reset(&mut self) {
        for bank in &mut self.banks {
            bank.fill(None);
        }
        // Only rows written since the last reset can be nonzero.
        for &row in &self.dirty_rows {
            self.data[row as usize].fill(0.0);
            self.dirty[row as usize] = false;
        }
        self.dirty_rows.clear();
        for slot in &mut self.pending {
            slot.clear();
        }
        self.pending_count = 0;
        self.cycle = 0;
        self.activity = Activity::default();
    }

    /// The configuration this machine models.
    pub fn config(&self) -> &ArchConfig {
        &self.cfg
    }

    /// Writes `value` into data-memory word `(row, col)` — the host-side
    /// interface used to stage program inputs.
    ///
    /// # Errors
    ///
    /// [`SimError::RowOutOfRange`] if `row` is out of range.
    pub fn poke(&mut self, row: u32, col: u32, value: f32) -> Result<(), SimError> {
        let r = self
            .data
            .get_mut(row as usize)
            .ok_or(SimError::RowOutOfRange { row })?;
        r[col as usize] = value;
        self.mark_dirty(row);
        Ok(())
    }

    /// Reads data-memory word `(row, col)`.
    ///
    /// # Errors
    ///
    /// [`SimError::RowOutOfRange`] if `row` is out of range.
    pub fn peek(&self, row: u32, col: u32) -> Result<f32, SimError> {
        self.data
            .get(row as usize)
            .map(|r| r[col as usize])
            .ok_or(SimError::RowOutOfRange { row })
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of valid (occupied) registers in each bank — the Fig. 10(c/d)
    /// "active registers per bank" metric.
    pub fn occupancy_per_bank(&self) -> Vec<u32> {
        self.banks
            .iter()
            .map(|b| b.iter().filter(|r| r.is_some()).count() as u32)
            .collect()
    }

    /// Total valid registers across all banks.
    pub fn live_registers(&self) -> u32 {
        self.occupancy_per_bank().iter().sum()
    }

    /// Accumulated activity counters.
    pub fn activity(&self) -> Activity {
        self.activity
    }

    fn read_reg(&mut self, bank: u32, addr: u32) -> Result<f32, SimError> {
        self.banks[bank as usize][addr as usize].ok_or(SimError::ReadInvalid {
            bank,
            addr,
            cycle: self.cycle,
        })
    }

    /// Priority-encoder write: lowest invalid register (Fig. 5(d)).
    fn auto_write(&mut self, bank: u32, value: f32) -> Result<(), SimError> {
        let cycle = self.cycle;
        let col = &mut self.banks[bank as usize];
        let a = col
            .iter()
            .position(Option::is_none)
            .ok_or(SimError::BankOverflow { bank, cycle })?;
        col[a] = Some(value);
        self.activity.reg_writes += 1;
        Ok(())
    }

    /// Lands the exec writebacks scheduled for the end of the current
    /// cycle. `extra_writes` lists banks already written this cycle by the
    /// issuing instruction (write-port conflict detection).
    fn land_pending(&mut self, extra_writes: &[u32]) -> Result<(), SimError> {
        let slot = (self.cycle % self.pending.len() as u64) as usize;
        if self.pending[slot].is_empty() {
            return Ok(());
        }
        let mut seen: Vec<u32> = extra_writes.to_vec();
        self.land_slot(slot, &mut seen)
    }

    /// Lands ring slot `slot` (which must be non-empty). `seen` lists
    /// banks already written this cycle (write-port conflict detection)
    /// and is extended in place — [`Machine::run_decoded`] passes a
    /// reused buffer here so landing allocates nothing.
    fn land_slot(&mut self, slot: usize, seen: &mut Vec<u32>) -> Result<(), SimError> {
        // Take the slot's buffer (the register file is borrowed mutably
        // below), then hand it back cleared so its capacity stays warm.
        let list = std::mem::take(&mut self.pending[slot]);
        self.pending_count -= list.len();
        for &(bank, value) in &list {
            if seen.contains(&bank) {
                return Err(SimError::WritePortClash {
                    bank,
                    cycle: self.cycle,
                });
            }
            seen.push(bank);
            self.auto_write(bank, value)?;
        }
        let mut list = list;
        list.clear();
        self.pending[slot] = list;
        Ok(())
    }

    /// Issues one instruction (one cycle) and lands due writebacks.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn step(&mut self, instr: &Instr) -> Result<(), SimError> {
        let cfg = self.cfg;
        let mut immediate_writes: Vec<u32> = Vec::new();
        match instr {
            Instr::Nop => {}
            Instr::Load { row, mask } => {
                if *row >= cfg.data_mem_rows {
                    return Err(SimError::RowOutOfRange { row: *row });
                }
                self.activity.mem_reads += 1;
                let mut row_vals = std::mem::take(&mut self.scratch.row);
                row_vals.clear();
                row_vals.extend_from_slice(&self.data[*row as usize]);
                for (bank, &m) in mask.iter().enumerate() {
                    if m {
                        self.auto_write(bank as u32, row_vals[bank])?;
                        immediate_writes.push(bank as u32);
                    }
                }
                self.scratch.row = row_vals;
            }
            Instr::Store { row, reads } => {
                if *row >= cfg.data_mem_rows {
                    return Err(SimError::RowOutOfRange { row: *row });
                }
                self.activity.mem_writes += 1;
                self.mark_dirty(*row);
                for (bank, r) in reads.iter().enumerate() {
                    if let Some(r) = r {
                        let v = self.read_reg(r.bank, r.addr)?;
                        self.activity.reg_reads += 1;
                        if r.valid_rst {
                            self.banks[r.bank as usize][r.addr as usize] = None;
                        }
                        self.data[*row as usize][bank] = v;
                    }
                }
            }
            Instr::StoreK { row, reads } => {
                if *row >= cfg.data_mem_rows {
                    return Err(SimError::RowOutOfRange { row: *row });
                }
                self.activity.mem_writes += 1;
                self.mark_dirty(*row);
                for r in reads {
                    let v = self.read_reg(r.bank, r.addr)?;
                    self.activity.reg_reads += 1;
                    if r.valid_rst {
                        self.banks[r.bank as usize][r.addr as usize] = None;
                    }
                    self.data[*row as usize][r.bank as usize] = v;
                }
            }
            Instr::CopyK { moves } => {
                // All reads happen before any write lands (crossbar pass).
                let mut staged = Vec::with_capacity(moves.len());
                for m in moves {
                    let v = self.read_reg(m.src.bank, m.src.addr)?;
                    self.activity.reg_reads += 1;
                    self.activity.crossbar_hops += 1;
                    if m.src.valid_rst {
                        self.banks[m.src.bank as usize][m.src.addr as usize] = None;
                    }
                    staged.push((m.dst_bank, v));
                }
                for (bank, v) in staged {
                    self.auto_write(bank, v)?;
                    immediate_writes.push(bank);
                }
            }
            Instr::Exec(e) => {
                self.activity.execs += 1;
                // The scratch buffers are taken out of `self` for the
                // duration of the arm (the register file is borrowed
                // mutably in between) and put back at the end. Early error
                // returns leave them empty — harmless, because every use
                // site clears and resizes first, and a failed step aborts
                // the run anyway.
                //
                // 1. Operand fetch through the input crossbar. Broadcast
                // reads (same bank+addr on several ports) count once,
                // deduplicated through the epoch-stamped per-bank memo
                // (see the field docs on [`Scratch`]).
                let mut port_vals = std::mem::take(&mut self.scratch.ports);
                port_vals.clear();
                port_vals.resize(cfg.banks as usize, None);
                let mut fetch_epoch = std::mem::take(&mut self.scratch.fetch_epoch);
                let mut fetch_addr = std::mem::take(&mut self.scratch.fetch_addr);
                let mut fetch_val = std::mem::take(&mut self.scratch.fetch_val);
                fetch_epoch.resize(cfg.banks as usize, 0);
                fetch_addr.resize(cfg.banks as usize, 0);
                fetch_val.resize(cfg.banks as usize, 0.0);
                self.scratch.epoch += 1;
                let epoch = self.scratch.epoch;
                for (port, r) in e.reads.iter().enumerate() {
                    let Some(r) = r else { continue };
                    let bank = r.bank as usize;
                    let v = if fetch_epoch[bank] == epoch && fetch_addr[bank] == r.addr {
                        fetch_val[bank]
                    } else {
                        let v = self.read_reg(r.bank, r.addr)?;
                        self.activity.reg_reads += 1;
                        fetch_epoch[bank] = epoch;
                        fetch_addr[bank] = r.addr;
                        fetch_val[bank] = v;
                        v
                    };
                    self.activity.crossbar_hops += 1;
                    port_vals[port] = Some(v);
                }
                self.scratch.fetch_epoch = fetch_epoch;
                self.scratch.fetch_addr = fetch_addr;
                self.scratch.fetch_val = fetch_val;
                // rst after all reads of the cycle (idempotent per bank).
                for r in e.reads.iter().flatten() {
                    if r.valid_rst {
                        self.banks[r.bank as usize][r.addr as usize] = None;
                    }
                }
                // 2. Evaluate the trees layer by layer.
                let mut layer_out = std::mem::take(&mut self.scratch.layers);
                layer_out.resize_with(cfg.depth as usize, Vec::new);
                for l in 1..=cfg.depth {
                    let (prev_layers, rest) = layer_out.split_at_mut((l - 1) as usize);
                    let outs = &mut rest[0];
                    outs.clear();
                    outs.resize((cfg.trees() * cfg.pes_in_layer(l)) as usize, None);
                    for t in 0..cfg.trees() {
                        for i in 0..cfg.pes_in_layer(l) {
                            let pe = dpu_isa::PeId::new(t, l, i);
                            let op = e.pe_ops[pe.flat_index(&cfg) as usize];
                            if op == PeOpcode::Nop {
                                continue;
                            }
                            let (a, b) = if l == 1 {
                                let base = (t * cfg.ports_per_tree() + 2 * i) as usize;
                                (port_vals[base], port_vals[base + 1])
                            } else {
                                let prev = &prev_layers[(l - 2) as usize];
                                let base = (t * cfg.pes_in_layer(l - 1) + 2 * i) as usize;
                                (prev[base], prev[base + 1])
                            };
                            let av = a.unwrap_or(f32::NAN);
                            let bv = b.unwrap_or(f32::NAN);
                            let out = op.apply(av, bv);
                            if matches!(op, PeOpcode::BypassL | PeOpcode::BypassR) {
                                self.activity.pe_bypass_ops += 1;
                            } else {
                                self.activity.pe_arith_ops += 1;
                            }
                            outs[(t * cfg.pes_in_layer(l) + i) as usize] = Some(out);
                        }
                    }
                }
                // 3. Schedule writebacks for cycle + D (its ring slot is
                // necessarily empty: it drained at cycle - 1).
                let land_at = self.cycle + u64::from(cfg.depth);
                let slot = (land_at % self.pending.len() as u64) as usize;
                for (bank, w) in e.writes.iter().enumerate() {
                    let Some(pe) = w else { continue };
                    let outs = &layer_out[(pe.layer - 1) as usize];
                    let v = outs[(pe.tree * cfg.pes_in_layer(pe.layer) + pe.index) as usize]
                        .ok_or(SimError::IdlePeWriteback { bank: bank as u32 })?;
                    self.pending[slot].push((bank as u32, v));
                    self.pending_count += 1;
                }
                self.scratch.ports = port_vals;
                self.scratch.layers = layer_out;
            }
        }
        self.land_pending(&immediate_writes)?;
        self.cycle += 1;
        Ok(())
    }

    /// Runs a whole program (plus pipeline drain) from the current state.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_program(&mut self, program: &Program) -> Result<(), SimError> {
        let il = u64::from(encode::fetch_width(&program.config));
        for instr in &program.instrs {
            self.step(instr)?;
            self.activity.instr_bits_fetched += il;
        }
        // Drain the pipeline.
        while self.pending_count > 0 {
            self.land_pending(&[])?;
            self.cycle += 1;
        }
        Ok(())
    }

    /// Runs a **packed** instruction-memory image: fetch `IL` bits per
    /// cycle, align with the shifter, decode, execute — the full Fig. 7(b)
    /// path rather than the pre-decoded list. Equivalent to
    /// [`Machine::run_program`] on the unpacked program; used to verify
    /// that the binary image is self-contained.
    ///
    /// # Errors
    ///
    /// [`SimError::BadImage`] if the stream does not decode; otherwise as
    /// [`Machine::step`].
    pub fn run_packed(&mut self, image: &[u8], count: usize) -> Result<(), SimError> {
        let il = u64::from(encode::fetch_width(&self.cfg));
        let mut reader = encode::BitReader::new(image);
        for _ in 0..count {
            let instr = encode::decode(&mut reader, &self.cfg).map_err(|e| SimError::BadImage {
                detail: e.to_string(),
            })?;
            self.step(&instr)?;
            self.activity.instr_bits_fetched += il;
        }
        while self.pending_count > 0 {
            self.land_pending(&[])?;
            self.cycle += 1;
        }
        Ok(())
    }
}

/// Runs `compiled` with the given DAG `inputs` (in input-ordinal order):
/// stages inputs into data memory, executes, and reads back outputs.
///
/// # Errors
///
/// See [`SimError`].
///
/// # Panics
///
/// Panics if `inputs` does not match the DAG's input count.
pub fn run(compiled: &Compiled, inputs: &[f32]) -> Result<RunResult, SimError> {
    let mut m = Machine::new(compiled.program.config);
    run_on(&mut m, compiled, inputs)
}

/// Like [`run`], but executes on a caller-owned [`Machine`], resetting it
/// first instead of allocating a fresh one. This is the serving hot path:
/// a worker thread owns one machine and reuses it across requests. If the
/// machine's configuration does not match the program's, it is rebuilt
/// (the one case that still allocates).
///
/// The result is identical to [`run`] for the same `(compiled, inputs)`.
///
/// # Errors
///
/// See [`SimError`].
///
/// # Panics
///
/// Panics if `inputs` does not match the DAG's input count.
pub fn run_on(m: &mut Machine, compiled: &Compiled, inputs: &[f32]) -> Result<RunResult, SimError> {
    assert_eq!(
        inputs.len(),
        compiled.layout.input_slots.len(),
        "input count mismatch"
    );
    if *m.config() == compiled.program.config {
        m.reset();
    } else {
        *m = Machine::new(compiled.program.config);
    }
    for (&(row, col), &v) in compiled.layout.input_slots.iter().zip(inputs) {
        if row != u32::MAX {
            m.poke(row, col, v)?;
        }
    }
    m.run_program(&compiled.program)?;
    let mut outputs = Vec::with_capacity(compiled.layout.output_slots.len());
    for &(row, col) in &compiled.layout.output_slots {
        outputs.push(m.peek(row, col)?);
    }
    Ok(RunResult {
        cycles: m.cycle(),
        outputs,
        activity: m.activity(),
        dag_ops: compiled.bin_dag.op_count() as u64,
    })
}

/// Verification report from [`run_and_verify`].
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// The run result.
    pub result: RunResult,
    /// Whether all outputs matched the reference evaluator.
    pub verified: bool,
}

/// Runs `compiled` and checks every output against the reference evaluator
/// on the compiled (binarized) DAG.
///
/// # Errors
///
/// Any [`SimError`], including [`SimError::Mismatch`] on the first
/// disagreeing output.
pub fn run_and_verify(compiled: &Compiled, inputs: &[f32]) -> Result<VerifyReport, SimError> {
    let result = run(compiled, inputs)?;
    let reference = eval::evaluate(&compiled.bin_dag, inputs).expect("compiled DAG evaluates");
    for (i, (&got, out_node)) in result
        .outputs
        .iter()
        .zip(compiled.outputs.iter())
        .enumerate()
    {
        let expected = reference[out_node.index()];
        if !eval::values_close(&[got], &[expected], 1e-3) {
            return Err(SimError::Mismatch {
                index: i,
                got,
                expected,
            });
        }
    }
    Ok(VerifyReport {
        result,
        verified: true,
    })
}

/// Throughput in operations per second at `freq_hz`, defined as the paper
/// does: DAG operations divided by execution time.
pub fn throughput_ops(result: &RunResult, freq_hz: f64) -> f64 {
    result.dag_ops as f64 * freq_hz / result.cycles as f64
}

/// Result of a batch run across parallel cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchResult {
    /// Per-input run results, in input order.
    pub runs: Vec<RunResult>,
    /// Number of parallel cores modelled.
    pub cores: usize,
    /// Wall-clock cycles of the batch: cores execute independent inputs in
    /// parallel, so the batch takes `ceil(inputs/cores)` rounds of the
    /// (identical) program length.
    pub batch_cycles: u64,
}

impl BatchResult {
    /// Aggregate throughput of the batch in operations per second.
    pub fn throughput_ops(&self, freq_hz: f64) -> f64 {
        let ops: u64 = self.runs.iter().map(|r| r.dag_ops).sum();
        ops as f64 * freq_hz / self.batch_cycles.max(1) as f64
    }
}

/// Executes `compiled` once per input set on `cores` parallel cores —
/// the paper's batch mode for DPU-v2 (L) (§V-C2: "the parallel cores can
/// either perform batch execution (used for benchmarking) or execute
/// different DAGs"). Cores are independent DPU-v2 instances running the
/// same program on different data, so there is no inter-core
/// synchronization; wall-clock is the longest round.
///
/// # Errors
///
/// [`SimError::NoCores`] if `cores == 0`, [`SimError::EmptyBatch`] if
/// `batch` is empty (typed rather than panicking so a malformed request
/// can never abort a serving shard), and otherwise the first input whose
/// simulation fails (see [`SimError`]).
pub fn run_batch(
    compiled: &Compiled,
    batch: &[Vec<f32>],
    cores: usize,
) -> Result<BatchResult, SimError> {
    if cores == 0 {
        return Err(SimError::NoCores);
    }
    if batch.is_empty() {
        return Err(SimError::EmptyBatch);
    }
    // One machine, reset per input: no per-request allocation.
    let mut m = Machine::new(compiled.program.config);
    let mut runs = Vec::with_capacity(batch.len());
    for inputs in batch {
        runs.push(run_on(&mut m, compiled, inputs)?);
    }
    let rounds = batch.len().div_ceil(cores) as u64;
    let per_run = runs.iter().map(|r| r.cycles).max().expect("non-empty");
    Ok(BatchResult {
        runs,
        cores,
        batch_cycles: rounds * per_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_compiler::{compile, CompileOptions};
    use dpu_dag::{DagBuilder, NodeId, Op};

    fn compile_run(dag: &dpu_dag::Dag, cfg: &ArchConfig, inputs: &[f32]) -> VerifyReport {
        let compiled = compile(dag, cfg, &CompileOptions::default()).unwrap();
        run_and_verify(&compiled, inputs).unwrap()
    }

    #[test]
    fn tiny_dag_end_to_end() {
        let mut b = DagBuilder::new();
        let x = b.input();
        let y = b.input();
        let s = b.node(Op::Add, &[x, y]).unwrap();
        b.node(Op::Mul, &[s, x]).unwrap();
        let dag = b.finish().unwrap();
        let cfg = ArchConfig::new(2, 8, 16).unwrap();
        let rep = compile_run(&dag, &cfg, &[3.0, 4.0]);
        assert_eq!(rep.result.outputs, vec![21.0]);
    }

    #[test]
    fn sub_div_ordering_is_respected() {
        let mut b = DagBuilder::new();
        let x = b.input();
        let y = b.input();
        let d = b.node(Op::Sub, &[x, y]).unwrap();
        b.node(Op::Div, &[d, y]).unwrap();
        let dag = b.finish().unwrap();
        let cfg = ArchConfig::new(2, 8, 16).unwrap();
        let rep = compile_run(&dag, &cfg, &[10.0, 2.0]);
        assert_eq!(rep.result.outputs, vec![4.0]);
    }

    #[test]
    fn random_dags_verify_across_configs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for seed in 0..4u64 {
            let mut b = DagBuilder::new();
            let mut ids: Vec<NodeId> = (0..8).map(|_| b.input()).collect();
            for _ in 0..120 {
                let i = ids[rng.gen_range(0..ids.len())];
                let j = ids[rng.gen_range(0..ids.len())];
                let op = match rng.gen_range(0..4) {
                    0 => Op::Add,
                    1 => Op::Mul,
                    2 => Op::Min,
                    _ => Op::Max,
                };
                ids.push(b.node(op, &[i, j]).unwrap());
            }
            let dag = b.finish().unwrap();
            let inputs: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            for (d, bk, r) in [(1u32, 4u32, 16u32), (2, 8, 16), (3, 16, 32)] {
                let cfg = ArchConfig::new(d, bk, r).unwrap();
                let rep = compile_run(&dag, &cfg, &inputs);
                assert!(rep.verified, "seed {seed} cfg {d}/{bk}/{r}");
            }
        }
    }

    #[test]
    fn spilling_config_still_verifies() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let mut b = DagBuilder::new();
        let mut ids: Vec<NodeId> = (0..16).map(|_| b.input()).collect();
        for _ in 0..300 {
            let i = ids[rng.gen_range(0..ids.len())];
            let j = ids[rng.gen_range(0..ids.len())];
            ids.push(b.node(Op::Add, &[i, j]).unwrap());
        }
        let dag = b.finish().unwrap();
        let cfg = ArchConfig::new(2, 8, 4).unwrap(); // tiny R forces spills
        let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
        assert!(compiled.stats.spill_stores > 0);
        let inputs: Vec<f32> = (0..16).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let rep = run_and_verify(&compiled, &inputs).unwrap();
        assert!(rep.verified);
    }

    #[test]
    fn cycles_match_compiler_prediction() {
        let mut b = DagBuilder::new();
        let x = b.input();
        let y = b.input();
        let s = b.node(Op::Add, &[x, y]).unwrap();
        b.node(Op::Mul, &[s, s]).unwrap();
        let dag = b.finish().unwrap();
        let cfg = ArchConfig::new(3, 16, 32).unwrap();
        let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
        let rep = run_and_verify(&compiled, &[1.0, 2.0]).unwrap();
        assert_eq!(rep.result.cycles, compiled.stats.total_cycles);
    }

    #[test]
    fn machine_detects_empty_register_read() {
        let cfg = ArchConfig::new(2, 8, 16).unwrap();
        let mut m = Machine::new(cfg);
        let instr = Instr::StoreK {
            row: 0,
            reads: vec![dpu_isa::RegRead {
                bank: 0,
                addr: 0,
                valid_rst: false,
            }],
        };
        assert!(matches!(
            m.step(&instr),
            Err(SimError::ReadInvalid {
                bank: 0,
                addr: 0,
                ..
            })
        ));
    }

    #[test]
    fn machine_detects_overflow() {
        let cfg = ArchConfig::new(1, 2, 2).unwrap();
        let mut m = Machine::new(cfg);
        let mask = vec![true, false];
        for _ in 0..2 {
            m.step(&Instr::Load {
                row: 0,
                mask: mask.clone(),
            })
            .unwrap();
        }
        assert!(matches!(
            m.step(&Instr::Load { row: 0, mask }),
            Err(SimError::BankOverflow { bank: 0, .. })
        ));
    }

    #[test]
    fn broadcast_dedup_counts_one_register_read_per_bank() {
        let cfg = ArchConfig::new(1, 2, 2).unwrap();
        let mut m = Machine::new(cfg);
        m.step(&Instr::Load {
            row: 0,
            mask: vec![true, false],
        })
        .unwrap();
        let exec = Instr::Exec(dpu_isa::ExecInstr {
            reads: vec![
                Some(dpu_isa::PortRead {
                    bank: 0,
                    addr: 0,
                    valid_rst: false,
                }),
                Some(dpu_isa::PortRead {
                    bank: 0,
                    addr: 0,
                    valid_rst: false,
                }),
            ],
            pe_ops: vec![PeOpcode::Add],
            writes: vec![None, None],
        });
        m.step(&exec).unwrap();
        assert_eq!(m.activity().reg_reads, 1, "broadcast fetch counts once");
        assert_eq!(m.activity().crossbar_hops, 2, "both ports hop the crossbar");
        // The next exec is a fresh epoch: the bank is fetched again even
        // though the memo still physically holds the stale entry.
        m.step(&exec).unwrap();
        assert_eq!(m.activity().reg_reads, 2);
        assert_eq!(m.activity().crossbar_hops, 4);
    }

    #[test]
    fn decoded_run_matches_interpreted_run() {
        let mut b = DagBuilder::new();
        let x = b.input();
        let y = b.input();
        let s = b.node(Op::Add, &[x, y]).unwrap();
        let p = b.node(Op::Mul, &[s, x]).unwrap();
        b.node(Op::Max, &[p, y]).unwrap();
        let dag = b.finish().unwrap();
        let cfg = ArchConfig::new(2, 8, 16).unwrap();
        let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
        let decoded = DecodedProgram::decode(&compiled.program).unwrap();
        let mut m = Machine::new(cfg);
        for inputs in [[1.0f32, 2.0], [-3.5, 0.25], [7.0, 7.0]] {
            let dec = run_decoded_on(&mut m, &compiled, &decoded, &inputs).unwrap();
            let interp = run(&compiled, &inputs).unwrap();
            assert_eq!(dec, interp);
        }
    }

    #[test]
    fn decode_rejects_static_program_faults() {
        let cfg = ArchConfig::new(1, 2, 2).unwrap();
        let bad_row = Program {
            config: cfg,
            instrs: vec![Instr::Load {
                row: cfg.data_mem_rows,
                mask: vec![true, false],
            }],
        };
        assert!(matches!(
            DecodedProgram::decode(&bad_row),
            Err(SimError::RowOutOfRange { .. })
        ));
        let idle_writeback = Program {
            config: cfg,
            instrs: vec![Instr::Exec(dpu_isa::ExecInstr {
                reads: vec![None, None],
                pe_ops: vec![PeOpcode::Nop],
                writes: vec![Some(dpu_isa::PeId::new(0, 1, 0)), None],
            })],
        };
        assert!(matches!(
            DecodedProgram::decode(&idle_writeback),
            Err(SimError::IdlePeWriteback { bank: 0 })
        ));
    }

    #[test]
    fn reset_machine_matches_fresh_run() {
        let mut b = DagBuilder::new();
        let x = b.input();
        let y = b.input();
        let s = b.node(Op::Add, &[x, y]).unwrap();
        b.node(Op::Mul, &[s, y]).unwrap();
        let dag = b.finish().unwrap();
        let cfg = ArchConfig::new(2, 8, 16).unwrap();
        let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
        let mut m = Machine::new(cfg);
        for inputs in [[1.0f32, 2.0], [-3.5, 0.25], [7.0, 7.0]] {
            let reused = run_on(&mut m, &compiled, &inputs).unwrap();
            let fresh = run(&compiled, &inputs).unwrap();
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn run_on_rebuilds_on_config_mismatch() {
        let mut b = DagBuilder::new();
        let x = b.input();
        b.node(Op::Add, &[x, x]).unwrap();
        let dag = b.finish().unwrap();
        let cfg = ArchConfig::new(2, 8, 16).unwrap();
        let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
        let mut m = Machine::new(ArchConfig::new(1, 4, 8).unwrap());
        let r = run_on(&mut m, &compiled, &[2.5]).unwrap();
        assert_eq!(r.outputs, vec![5.0]);
        assert_eq!(*m.config(), cfg);
    }

    #[test]
    fn batch_reuses_machine_and_matches_individual_runs() {
        let mut b = DagBuilder::new();
        let x = b.input();
        let y = b.input();
        b.node(Op::Mul, &[x, y]).unwrap();
        let dag = b.finish().unwrap();
        let cfg = ArchConfig::new(2, 8, 16).unwrap();
        let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
        let batch: Vec<Vec<f32>> = (0..7).map(|i| vec![i as f32, 2.0]).collect();
        let res = run_batch(&compiled, &batch, 4).unwrap();
        for (i, r) in res.runs.iter().enumerate() {
            assert_eq!(r, &run(&compiled, &batch[i]).unwrap());
        }
        // 7 inputs on 4 cores -> 2 rounds of the program length.
        assert_eq!(res.batch_cycles, 2 * res.runs[0].cycles);
    }

    #[test]
    fn malformed_batch_requests_are_typed_errors_not_panics() {
        let mut b = DagBuilder::new();
        let x = b.input();
        b.node(Op::Add, &[x, x]).unwrap();
        let dag = b.finish().unwrap();
        let cfg = ArchConfig::new(2, 8, 16).unwrap();
        let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
        assert_eq!(
            run_batch(&compiled, &[vec![1.0]], 0).unwrap_err(),
            SimError::NoCores
        );
        assert_eq!(
            run_batch(&compiled, &[], 4).unwrap_err(),
            SimError::EmptyBatch
        );
    }

    #[test]
    fn activity_absorb_sums_fields() {
        let mut a = Activity {
            reg_reads: 1,
            execs: 2,
            ..Activity::default()
        };
        let b = Activity {
            reg_reads: 10,
            mem_writes: 3,
            ..Activity::default()
        };
        a.absorb(&b);
        assert_eq!(a.reg_reads, 11);
        assert_eq!(a.mem_writes, 3);
        assert_eq!(a.execs, 2);
    }

    #[test]
    fn throughput_definition() {
        let r = RunResult {
            cycles: 100,
            outputs: vec![],
            activity: Activity::default(),
            dag_ops: 50,
        };
        assert!((throughput_ops(&r, 300e6) - 150e6).abs() < 1.0);
    }
}
