//! Pre-decoded execution: flat micro-op programs for the serving hot
//! path.
//!
//! [`Machine::step`] re-interprets the [`Instr`] enum on every cycle of
//! every request: it walks heap `Vec`s inside the instruction for operand
//! fetch, re-derives each PE's operand wiring from `(tree, layer, index)`
//! arithmetic, scans every PE slot (including the idle ones) and
//! re-decides broadcast dedup per `exec`. None of that depends on the
//! input data — it is a pure function of the program — so a cached
//! program can pay it **once**.
//!
//! [`DecodedProgram::decode`] lowers a [`Program`] into arena-backed
//! structure-of-arrays micro-op tables:
//!
//! - one `(kind, row, span)` record per instruction (the program counter
//!   indexes these arrays directly);
//! - flat operand arenas per instruction kind (`Load` bank lists, unified
//!   `Store`/`StoreK` word moves, `CopyK` moves, and for `exec` the port
//!   reads, valid-bit resets, active PEs and writebacks);
//! - every `exec` operand pre-resolved to an index into one flat value
//!   array (ports first, then PE outputs layer by layer), with broadcast
//!   dedup decided at decode time (`ReadOp::copy_from` names the port
//!   that already fetched the bank) and idle PEs simply absent;
//! - static program properties (`load`/`store` bounds, writebacks that
//!   would latch an idle PE) checked once at decode instead of per cycle.
//!
//! [`Machine::run_decoded`] then drives the tables by program counter
//! with **zero per-cycle allocation** (lint-enforced by
//! `tests/forbidden_patterns.rs`), producing outputs, cycle counts and
//! [`Activity`](crate::Activity) counters byte-identical to
//! [`Machine::run_program`] / [`Machine::run_packed`] on the same
//! program. The decoded form is derived state: it is never persisted
//! (the spill layer stores only the verified [`Compiled`]
//! representation) and is rebuilt from the compiled program wherever it
//! is needed.

use dpu_compiler::Compiled;
use dpu_isa::{encode, ArchConfig, Instr, PeOpcode, Program};

use crate::{Machine, RunResult, SimError};

/// Sentinel index: "no source" (an undriven operand evaluates as NaN,
/// exactly like the interpreter's `unwrap_or(f32::NAN)`), or for
/// [`ReadOp::copy_from`] "fetch from the register file".
const NONE: u32 = u32::MAX;

/// Micro-op kind, one per source instruction. `Store` and `StoreK` lower
/// to the same micro-op (both are "read registers, write data-memory
/// words"); only their arena payloads differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Nop,
    Load,
    Store,
    CopyK,
    Exec,
}

/// Half-open index range into one of the arenas.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: u32,
    end: u32,
}

impl Span {
    fn new(start: usize, end: usize) -> Span {
        Span {
            start: start as u32,
            end: end as u32,
        }
    }

    fn range(self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// One `Store`/`StoreK` word move: read `(bank, addr)`, write data-memory
/// column `col` of the instruction's row.
#[derive(Debug, Clone, Copy)]
struct StoreOp {
    col: u32,
    bank: u32,
    addr: u32,
    valid_rst: bool,
}

/// One `CopyK` move through the crossbar.
#[derive(Debug, Clone, Copy)]
struct CopyOp {
    bank: u32,
    addr: u32,
    valid_rst: bool,
    dst_bank: u32,
}

/// One driven crossbar port of an `exec`. `copy_from == NONE` fetches
/// `(bank, addr)` from the register file (counting one register read);
/// otherwise the port broadcasts the value port `copy_from` already
/// fetched this cycle — the dedup decision the interpreter makes with a
/// per-`exec` linear scan, made once here.
#[derive(Debug, Clone, Copy)]
struct ReadOp {
    /// Value-array index this port drives (ports occupy `0..banks`).
    dst: u32,
    bank: u32,
    addr: u32,
    copy_from: u32,
}

/// A last-read valid-bit reset, applied after all reads of the cycle.
#[derive(Debug, Clone, Copy)]
struct RstOp {
    bank: u32,
    addr: u32,
}

/// One *active* PE evaluation (idle PEs are not represented at all).
/// `a`/`b` are pre-resolved value-array indices (`NONE` = undriven =
/// NaN); `dst` is the PE's own slot in the value array.
#[derive(Debug, Clone, Copy)]
struct PeOp {
    a: u32,
    b: u32,
    dst: u32,
    op: PeOpcode,
}

/// One `exec` writeback: bank `bank` latches value-array slot `src` at
/// the end of cycle `issue + depth`.
#[derive(Debug, Clone, Copy)]
struct WriteOp {
    bank: u32,
    src: u32,
}

/// Arena spans of one `exec` instruction.
#[derive(Debug, Clone, Copy)]
struct ExecOp {
    reads: Span,
    rsts: Span,
    pes: Span,
    writes: Span,
}

/// A [`Program`] lowered to flat micro-op arrays — decode once, execute
/// many. Build with [`DecodedProgram::decode`], run with
/// [`Machine::run_decoded`] (or [`crate::run_decoded_on`] for the full
/// stage-inputs/read-outputs round trip). See the module-level docs.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    config: ArchConfig,
    /// Fetch width `IL` in bits, pre-computed (per-cycle fetch
    /// accounting matches the interpreted and packed paths).
    fetch_bits: u64,
    /// Pipeline depth `D`: an `exec` issued at cycle `c` lands its
    /// writebacks at the end of cycle `c + land_offset`.
    land_offset: u64,
    /// Length of the per-`exec` value array: `banks` port slots followed
    /// by one slot per PE, layer by layer.
    vals_len: usize,
    // One record per instruction (indexed by program counter):
    kind: Vec<OpKind>,
    row: Vec<u32>,
    span: Vec<Span>,
    // Arenas:
    load_banks: Vec<u32>,
    stores: Vec<StoreOp>,
    copies: Vec<CopyOp>,
    execs: Vec<ExecOp>,
    reads: Vec<ReadOp>,
    rsts: Vec<RstOp>,
    pes: Vec<PeOp>,
    writes: Vec<WriteOp>,
}

impl DecodedProgram {
    /// Lowers `program` into flat micro-op arrays.
    ///
    /// Static program properties the interpreter checks per cycle are
    /// checked here once instead: a `load`/`store` row outside the data
    /// memory ([`SimError::RowOutOfRange`]) and an `exec` writeback
    /// selecting an idle PE ([`SimError::IdlePeWriteback`]) reject the
    /// program at decode time. State-dependent hazards (empty-register
    /// reads, write-port clashes, bank overflow) remain runtime checks
    /// in [`Machine::run_decoded`], exactly as interpreted.
    ///
    /// # Errors
    ///
    /// [`SimError::RowOutOfRange`] or [`SimError::IdlePeWriteback`] as
    /// above — both indicate a compiler bug or a corrupt program.
    pub fn decode(program: &Program) -> Result<DecodedProgram, SimError> {
        let cfg = program.config;
        // Value-array layout: ports `0..banks`, then each layer's PE
        // outputs; `layer_base[l - 1]` is layer `l`'s first slot.
        let mut layer_base = Vec::with_capacity(cfg.depth as usize);
        let mut next = cfg.banks;
        for l in 1..=cfg.depth {
            layer_base.push(next);
            next += cfg.trees() * cfg.pes_in_layer(l);
        }
        let vals_len = next as usize;
        let slot_of = |tree: u32, layer: u32, index: u32| {
            layer_base[(layer - 1) as usize] + tree * cfg.pes_in_layer(layer) + index
        };

        let mut d = DecodedProgram {
            config: cfg,
            fetch_bits: u64::from(encode::fetch_width(&cfg)),
            land_offset: u64::from(cfg.depth),
            vals_len,
            kind: Vec::with_capacity(program.instrs.len()),
            row: Vec::with_capacity(program.instrs.len()),
            span: Vec::with_capacity(program.instrs.len()),
            load_banks: Vec::new(),
            stores: Vec::new(),
            copies: Vec::new(),
            execs: Vec::new(),
            reads: Vec::new(),
            rsts: Vec::new(),
            pes: Vec::new(),
            writes: Vec::new(),
        };
        // Which value-array slots the current `exec` defines (driven
        // ports + active PEs) — operands resolving to an undefined slot
        // become NaN, writebacks from one are a decode error.
        let mut defined = vec![false; vals_len];

        for instr in &program.instrs {
            let (kind, row, span) = match instr {
                Instr::Nop => (OpKind::Nop, 0, Span::new(0, 0)),
                Instr::Load { row, mask } => {
                    if *row >= cfg.data_mem_rows {
                        return Err(SimError::RowOutOfRange { row: *row });
                    }
                    let start = d.load_banks.len();
                    for (bank, &m) in mask.iter().enumerate() {
                        if m {
                            d.load_banks.push(bank as u32);
                        }
                    }
                    (OpKind::Load, *row, Span::new(start, d.load_banks.len()))
                }
                Instr::Store { row, reads } => {
                    if *row >= cfg.data_mem_rows {
                        return Err(SimError::RowOutOfRange { row: *row });
                    }
                    let start = d.stores.len();
                    for (col, r) in reads.iter().enumerate() {
                        if let Some(r) = r {
                            d.stores.push(StoreOp {
                                col: col as u32,
                                bank: r.bank,
                                addr: r.addr,
                                valid_rst: r.valid_rst,
                            });
                        }
                    }
                    (OpKind::Store, *row, Span::new(start, d.stores.len()))
                }
                Instr::StoreK { row, reads } => {
                    if *row >= cfg.data_mem_rows {
                        return Err(SimError::RowOutOfRange { row: *row });
                    }
                    let start = d.stores.len();
                    for r in reads {
                        // A `store.k` word lands at the column of its
                        // source bank.
                        d.stores.push(StoreOp {
                            col: r.bank,
                            bank: r.bank,
                            addr: r.addr,
                            valid_rst: r.valid_rst,
                        });
                    }
                    (OpKind::Store, *row, Span::new(start, d.stores.len()))
                }
                Instr::CopyK { moves } => {
                    let start = d.copies.len();
                    for m in moves {
                        d.copies.push(CopyOp {
                            bank: m.src.bank,
                            addr: m.src.addr,
                            valid_rst: m.src.valid_rst,
                            dst_bank: m.dst_bank,
                        });
                    }
                    (OpKind::CopyK, 0, Span::new(start, d.copies.len()))
                }
                Instr::Exec(e) => {
                    defined.fill(false);
                    let reads_start = d.reads.len();
                    // Broadcast dedup, decided once: the first port to
                    // read a `(bank, addr)` fetches; later ports copy
                    // its port slot. Same linear-scan relation the
                    // interpreter applies per cycle.
                    for (port, r) in e.reads.iter().enumerate() {
                        let Some(r) = r else { continue };
                        let copy_from = d.reads[reads_start..]
                            .iter()
                            .find(|f| f.copy_from == NONE && (f.bank, f.addr) == (r.bank, r.addr))
                            .map_or(NONE, |f| f.dst);
                        d.reads.push(ReadOp {
                            dst: port as u32,
                            bank: r.bank,
                            addr: r.addr,
                            copy_from,
                        });
                        defined[port] = true;
                    }
                    let rsts_start = d.rsts.len();
                    for r in e.reads.iter().flatten() {
                        if r.valid_rst {
                            d.rsts.push(RstOp {
                                bank: r.bank,
                                addr: r.addr,
                            });
                        }
                    }
                    // Active PEs only, in the interpreter's evaluation
                    // order, operands pre-resolved to value-array slots.
                    let pes_start = d.pes.len();
                    for l in 1..=cfg.depth {
                        for t in 0..cfg.trees() {
                            for i in 0..cfg.pes_in_layer(l) {
                                let pe = dpu_isa::PeId::new(t, l, i);
                                let op = e.pe_ops[pe.flat_index(&cfg) as usize];
                                if op == PeOpcode::Nop {
                                    continue;
                                }
                                let (a, b) = if l == 1 {
                                    let base = t * cfg.ports_per_tree() + 2 * i;
                                    (base, base + 1)
                                } else {
                                    let base = slot_of(t, l - 1, 2 * i);
                                    (base, base + 1)
                                };
                                let dst = slot_of(t, l, i);
                                d.pes.push(PeOp {
                                    a: if defined[a as usize] { a } else { NONE },
                                    b: if defined[b as usize] { b } else { NONE },
                                    dst,
                                    op,
                                });
                                defined[dst as usize] = true;
                            }
                        }
                    }
                    let writes_start = d.writes.len();
                    for (bank, w) in e.writes.iter().enumerate() {
                        let Some(pe) = w else { continue };
                        let src = slot_of(pe.tree, pe.layer, pe.index);
                        if !defined[src as usize] {
                            return Err(SimError::IdlePeWriteback { bank: bank as u32 });
                        }
                        d.writes.push(WriteOp {
                            bank: bank as u32,
                            src,
                        });
                    }
                    let start = d.execs.len();
                    d.execs.push(ExecOp {
                        reads: Span::new(reads_start, d.reads.len()),
                        rsts: Span::new(rsts_start, d.rsts.len()),
                        pes: Span::new(pes_start, d.pes.len()),
                        writes: Span::new(writes_start, d.writes.len()),
                    });
                    (OpKind::Exec, 0, Span::new(start, start + 1))
                }
            };
            d.kind.push(kind);
            d.row.push(row);
            d.span.push(span);
        }
        Ok(d)
    }

    /// The configuration the program was decoded for.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Number of source instructions (= issue cycles before drain).
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }
}

impl Machine {
    /// Runs a decoded program (plus pipeline drain) from the current
    /// state — the pre-decoded equivalent of [`Machine::run_program`],
    /// with outputs, cycle counts and activity counters byte-identical
    /// to it on any program that passes decode.
    ///
    /// # Errors
    ///
    /// The state-dependent subset of [`SimError`] (empty-register reads,
    /// write-port clashes, bank overflow); static errors were already
    /// rejected by [`DecodedProgram::decode`].
    ///
    /// # Panics
    ///
    /// Panics if the machine's configuration differs from the one the
    /// program was decoded for ([`crate::run_decoded_on`] re-builds the
    /// machine instead of panicking).
    pub fn run_decoded(&mut self, prog: &DecodedProgram) -> Result<(), SimError> {
        assert_eq!(
            self.cfg, prog.config,
            "machine/program configuration mismatch"
        );
        let il = prog.fetch_bits;
        let ring = self.pending.len() as u64;
        // All buffers the loop needs, sized up front; early error
        // returns leave them empty in scratch — harmless, a failed run
        // aborts the request (same caveat as `Machine::step`).
        let mut vals = std::mem::take(&mut self.scratch.vals);
        vals.clear();
        vals.resize(prog.vals_len, 0.0);
        let mut imm = std::mem::take(&mut self.scratch.imm);
        let mut staged = std::mem::take(&mut self.scratch.staged);
        // BEGIN run_decoded cycle loop (zero-alloc: no allocating vector
        // idioms in here — lint-enforced by tests/forbidden_patterns.rs)
        for pc in 0..prog.kind.len() {
            imm.clear();
            let span = prog.span[pc];
            match prog.kind[pc] {
                OpKind::Nop => {}
                OpKind::Load => {
                    let row = prog.row[pc] as usize;
                    self.activity.mem_reads += 1;
                    let mut row_vals = std::mem::take(&mut self.scratch.row);
                    row_vals.clear();
                    row_vals.extend_from_slice(&self.data[row]);
                    for &bank in &prog.load_banks[span.range()] {
                        self.auto_write(bank, row_vals[bank as usize])?;
                        imm.push(bank);
                    }
                    self.scratch.row = row_vals;
                }
                OpKind::Store => {
                    let row = prog.row[pc];
                    self.activity.mem_writes += 1;
                    self.mark_dirty(row);
                    for s in &prog.stores[span.range()] {
                        let v = self.read_reg(s.bank, s.addr)?;
                        self.activity.reg_reads += 1;
                        if s.valid_rst {
                            self.banks[s.bank as usize][s.addr as usize] = None;
                        }
                        self.data[row as usize][s.col as usize] = v;
                    }
                }
                OpKind::CopyK => {
                    // All reads happen before any write lands (crossbar
                    // pass), staged in a reused buffer.
                    staged.clear();
                    for c in &prog.copies[span.range()] {
                        let v = self.read_reg(c.bank, c.addr)?;
                        self.activity.reg_reads += 1;
                        self.activity.crossbar_hops += 1;
                        if c.valid_rst {
                            self.banks[c.bank as usize][c.addr as usize] = None;
                        }
                        staged.push((c.dst_bank, v));
                    }
                    for &(bank, v) in staged.iter() {
                        self.auto_write(bank, v)?;
                        imm.push(bank);
                    }
                }
                OpKind::Exec => {
                    self.activity.execs += 1;
                    let e = prog.execs[span.start as usize];
                    for r in &prog.reads[e.reads.range()] {
                        let v = if r.copy_from == NONE {
                            let v = self.read_reg(r.bank, r.addr)?;
                            self.activity.reg_reads += 1;
                            v
                        } else {
                            vals[r.copy_from as usize]
                        };
                        self.activity.crossbar_hops += 1;
                        vals[r.dst as usize] = v;
                    }
                    for rst in &prog.rsts[e.rsts.range()] {
                        self.banks[rst.bank as usize][rst.addr as usize] = None;
                    }
                    for pe in &prog.pes[e.pes.range()] {
                        let av = if pe.a == NONE {
                            f32::NAN
                        } else {
                            vals[pe.a as usize]
                        };
                        let bv = if pe.b == NONE {
                            f32::NAN
                        } else {
                            vals[pe.b as usize]
                        };
                        let out = pe.op.apply(av, bv);
                        if matches!(pe.op, PeOpcode::BypassL | PeOpcode::BypassR) {
                            self.activity.pe_bypass_ops += 1;
                        } else {
                            self.activity.pe_arith_ops += 1;
                        }
                        vals[pe.dst as usize] = out;
                    }
                    let slot = ((self.cycle + prog.land_offset) % ring) as usize;
                    for w in &prog.writes[e.writes.range()] {
                        self.pending[slot].push((w.bank, vals[w.src as usize]));
                        self.pending_count += 1;
                    }
                }
            }
            // Land due writebacks; `imm` doubles as the write-port
            // conflict set (it already lists this cycle's immediate
            // writes, and is cleared next iteration).
            let slot = (self.cycle % ring) as usize;
            if !self.pending[slot].is_empty() {
                self.land_slot(slot, &mut imm)?;
            }
            self.cycle += 1;
            self.activity.instr_bits_fetched += il;
        }
        // END run_decoded cycle loop
        // Drain the pipeline.
        while self.pending_count > 0 {
            let slot = (self.cycle % ring) as usize;
            if !self.pending[slot].is_empty() {
                imm.clear();
                self.land_slot(slot, &mut imm)?;
            }
            self.cycle += 1;
        }
        self.scratch.vals = vals;
        self.scratch.imm = imm;
        self.scratch.staged = staged;
        Ok(())
    }
}

/// Like [`crate::run_on`], but executing the pre-decoded form: stages
/// inputs, runs [`Machine::run_decoded`], reads back outputs. `decoded`
/// must be the decode of `compiled.program`; the result is byte-identical
/// to [`crate::run_on`] for the same `(compiled, inputs)`.
///
/// # Errors
///
/// See [`SimError`].
///
/// # Panics
///
/// Panics if `inputs` does not match the DAG's input count, or if
/// `decoded` was built for a different configuration than `compiled`.
pub fn run_decoded_on(
    m: &mut Machine,
    compiled: &Compiled,
    decoded: &DecodedProgram,
    inputs: &[f32],
) -> Result<RunResult, SimError> {
    assert_eq!(
        inputs.len(),
        compiled.layout.input_slots.len(),
        "input count mismatch"
    );
    assert_eq!(
        *decoded.config(),
        compiled.program.config,
        "decoded program configuration mismatch"
    );
    if *m.config() == compiled.program.config {
        m.reset();
    } else {
        *m = Machine::new(compiled.program.config);
    }
    for (&(row, col), &v) in compiled.layout.input_slots.iter().zip(inputs) {
        if row != u32::MAX {
            m.poke(row, col, v)?;
        }
    }
    m.run_decoded(decoded)?;
    let mut outputs = Vec::with_capacity(compiled.layout.output_slots.len());
    for &(row, col) in &compiled.layout.output_slots {
        outputs.push(m.peek(row, col)?);
    }
    Ok(RunResult {
        cycles: m.cycle(),
        outputs,
        activity: m.activity(),
        dag_ops: compiled.bin_dag.op_count() as u64,
    })
}
