//! End-to-end: real workload classes compile, run, and verify.

use dpu_compiler::{compile, CompileOptions};
use dpu_isa::ArchConfig;
use dpu_sim::run_and_verify;
use dpu_workloads::pc::{generate_pc, pc_inputs, PcParams};
use dpu_workloads::sparse::{generate_lower_triangular, LowerTriangularParams};
use dpu_workloads::sptrsv::{solve_reference, SptrsvDag};

#[test]
fn pc_workload_verifies_on_min_edp() {
    let dag = generate_pc(&PcParams::with_targets(2_000, 18), 42);
    let cfg = ArchConfig::min_edp();
    let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
    let inputs = pc_inputs(&dag, 7);
    let rep = run_and_verify(&compiled, &inputs).unwrap();
    assert!(rep.verified);
    println!(
        "PC: {} nodes, {} instrs, {} cycles, util {:.2}",
        dag.len(),
        compiled.program.len(),
        rep.result.cycles,
        compiled.stats.pe_utilization
    );
}

#[test]
fn sptrsv_workload_verifies_and_solves() {
    let p = LowerTriangularParams {
        dim: 150,
        avg_nnz_per_row: 4.0,
        band_fraction: 0.7,
        band: 8,
    };
    let l = generate_lower_triangular(&p, 3);
    let s = SptrsvDag::build(&l);
    let b: Vec<f32> = (0..l.dim).map(|i| (i as f32 * 0.37).sin()).collect();

    let cfg = ArchConfig::new(3, 16, 64).unwrap();
    let compiled = compile(&s.dag, &cfg, &CompileOptions::default()).unwrap();
    let rep = run_and_verify(&compiled, &s.inputs(&l, &b)).unwrap();
    assert!(rep.verified);

    // The stored outputs include every x_i (they are DAG sinks only if
    // unused; solution extraction goes through sink slots) — instead check
    // against the reference via the DAG evaluator path, which run_and_verify
    // already did. Here additionally sanity-check the reference solver.
    let x = solve_reference(&l, &b);
    assert_eq!(x.len(), l.dim);
}
