//! Packed-image execution equivalence and failure injection: corrupt
//! programs must be *detected*, not silently executed.

use dpu_compiler::{compile, CompileOptions};
use dpu_dag::{DagBuilder, NodeId, Op};
use dpu_isa::{ArchConfig, Instr, RegRead};
use dpu_sim::{Machine, SimError};

fn workload() -> (dpu_dag::Dag, Vec<f32>) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(21);
    let mut b = DagBuilder::new();
    let mut ids: Vec<NodeId> = (0..10).map(|_| b.input()).collect();
    for _ in 0..200 {
        let i = ids[rng.gen_range(0..ids.len())];
        let j = ids[rng.gen_range(0..ids.len())];
        let op = if rng.gen_bool(0.5) { Op::Add } else { Op::Mul };
        ids.push(b.node(op, &[i, j]).unwrap());
    }
    let dag = b.finish().unwrap();
    let inputs: Vec<f32> = (0..10).map(|i| 0.5 + i as f32 * 0.05).collect();
    (dag, inputs)
}

/// Executing the packed binary image through fetch+decode produces exactly
/// the same state and cycle count as executing the decoded program.
#[test]
fn packed_image_execution_is_equivalent() {
    let (dag, inputs) = workload();
    let cfg = ArchConfig::new(2, 8, 32).unwrap();
    let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();

    let stage = |m: &mut Machine| {
        for (&(row, col), &v) in compiled.layout.input_slots.iter().zip(&inputs) {
            if row != u32::MAX {
                m.poke(row, col, v).unwrap();
            }
        }
    };
    let mut direct = Machine::new(cfg);
    stage(&mut direct);
    direct.run_program(&compiled.program).unwrap();

    let mut packed = Machine::new(cfg);
    stage(&mut packed);
    let image = compiled.program.pack();
    packed.run_packed(&image, compiled.program.len()).unwrap();

    assert_eq!(direct.cycle(), packed.cycle());
    assert_eq!(direct.activity(), packed.activity());
    for &(row, col) in &compiled.layout.output_slots {
        assert_eq!(
            direct.peek(row, col).unwrap(),
            packed.peek(row, col).unwrap()
        );
    }
}

#[test]
fn truncated_image_is_rejected() {
    let (dag, _) = workload();
    let cfg = ArchConfig::new(2, 8, 32).unwrap();
    let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
    let image = compiled.program.pack();
    let mut m = Machine::new(cfg);
    let err = m.run_packed(&image[..image.len() / 2], compiled.program.len());
    assert!(matches!(err, Err(SimError::BadImage { .. }) | Err(_)));
}

/// Flipping a premature valid_rst in a real program makes a later read hit
/// an empty register — the machine must detect it.
#[test]
fn premature_rst_is_detected() {
    let (dag, inputs) = workload();
    let cfg = ArchConfig::new(2, 8, 32).unwrap();
    let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
    let mut program = compiled.program.clone();
    // Find the first exec read without rst and force it on.
    let mut corrupted = false;
    'outer: for ins in &mut program.instrs {
        if let Instr::Exec(e) = ins {
            for r in e.reads.iter_mut().flatten() {
                if !r.valid_rst {
                    r.valid_rst = true;
                    corrupted = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(corrupted, "workload has a reusable operand");
    let mut m = Machine::new(cfg);
    for (&(row, col), &v) in compiled.layout.input_slots.iter().zip(&inputs) {
        if row != u32::MAX {
            m.poke(row, col, v).unwrap();
        }
    }
    let err = m.run_program(&program);
    assert!(
        matches!(err, Err(SimError::ReadInvalid { .. })),
        "corruption must be caught, got {err:?}"
    );
}

/// An extra load into a busy bank eventually overflows it.
#[test]
fn overflowing_injection_is_detected() {
    let cfg = ArchConfig::new(1, 2, 4).unwrap();
    let mut m = Machine::new(cfg);
    let mask = vec![true, true];
    for _ in 0..4 {
        m.step(&Instr::Load {
            row: 0,
            mask: mask.clone(),
        })
        .unwrap();
    }
    let err = m.step(&Instr::Load { row: 0, mask });
    assert!(matches!(err, Err(SimError::BankOverflow { .. })));
}

/// A store reading a stale address after rst must fail loudly.
#[test]
fn stale_store_read_is_detected() {
    let cfg = ArchConfig::new(1, 2, 4).unwrap();
    let mut m = Machine::new(cfg);
    m.step(&Instr::Load {
        row: 0,
        mask: vec![true, false],
    })
    .unwrap();
    let rd = RegRead {
        bank: 0,
        addr: 0,
        valid_rst: true,
    };
    m.step(&Instr::StoreK {
        row: 1,
        reads: vec![rd],
    })
    .unwrap();
    // Second read of the freed register.
    let err = m.step(&Instr::StoreK {
        row: 2,
        reads: vec![RegRead {
            bank: 0,
            addr: 0,
            valid_rst: false,
        }],
    });
    assert!(matches!(err, Err(SimError::ReadInvalid { .. })));
}

/// Batch execution: 4 cores on 4 inputs take one round; aggregate
/// throughput is ~4x a single run's.
#[test]
fn batch_execution_scales_throughput() {
    let (dag, inputs) = workload();
    let cfg = ArchConfig::new(2, 8, 32).unwrap();
    let compiled = compile(&dag, &cfg, &CompileOptions::default()).unwrap();
    let batch: Vec<Vec<f32>> = (0..4)
        .map(|k| inputs.iter().map(|v| v + k as f32 * 0.01).collect())
        .collect();
    let single = dpu_sim::run(&compiled, &inputs).unwrap();
    let b = dpu_sim::run_batch(&compiled, &batch, 4).unwrap();
    assert_eq!(b.batch_cycles, single.cycles);
    let t1 = dpu_sim::throughput_ops(&single, 300e6);
    let t4 = b.throughput_ops(300e6);
    assert!((t4 / t1 - 4.0).abs() < 0.01, "ratio {}", t4 / t1);
    // Two cores on four inputs: two rounds.
    let b2 = dpu_sim::run_batch(&compiled, &batch, 2).unwrap();
    assert_eq!(b2.batch_cycles, 2 * single.cycles);
}
