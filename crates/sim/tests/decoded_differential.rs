//! Differential fuzz: the three execution paths — interpreted
//! ([`Machine::run_program`]), packed fetch+decode
//! ([`Machine::run_packed`]) and pre-decoded
//! ([`Machine::run_decoded`]) — must be indistinguishable on every
//! program: bit-identical outputs, identical cycle counts and identical
//! activity counters, across random workloads × architecture configs
//! (including a tiny-register config that forces compiler spills).

use dpu_compiler::{compile, CompileOptions, Compiled};
use dpu_dag::{Dag, DagBuilder, NodeId, Op};
use dpu_isa::ArchConfig;
use dpu_sim::{run_decoded_on, run_on, DecodedProgram, Machine, RunResult};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_dag(seed: u64) -> (Dag, Vec<f32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = DagBuilder::new();
    let n_inputs = rng.gen_range(4..12);
    let mut ids: Vec<NodeId> = (0..n_inputs).map(|_| b.input()).collect();
    for _ in 0..rng.gen_range(40..160) {
        let i = ids[rng.gen_range(0..ids.len())];
        let j = ids[rng.gen_range(0..ids.len())];
        let op = match rng.gen_range(0..6) {
            0 => Op::Add,
            1 => Op::Mul,
            2 => Op::Sub,
            3 => Op::Div,
            4 => Op::Min,
            _ => Op::Max,
        };
        ids.push(b.node(op, &[i, j]).unwrap());
    }
    let dag = b.finish().unwrap();
    let inputs: Vec<f32> = (0..n_inputs).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    (dag, inputs)
}

/// Runs `compiled` through one staged machine path and returns
/// `(outputs, cycles, activity)` for exact comparison.
fn run_packed_path(compiled: &Compiled, inputs: &[f32]) -> RunResult {
    let mut m = Machine::new(compiled.program.config);
    for (&(row, col), &v) in compiled.layout.input_slots.iter().zip(inputs) {
        if row != u32::MAX {
            m.poke(row, col, v).unwrap();
        }
    }
    let image = compiled.program.pack();
    m.run_packed(&image, compiled.program.len()).unwrap();
    let outputs = compiled
        .layout
        .output_slots
        .iter()
        .map(|&(row, col)| m.peek(row, col).unwrap())
        .collect();
    RunResult {
        cycles: m.cycle(),
        outputs,
        activity: m.activity(),
        dag_ops: compiled.bin_dag.op_count() as u64,
    }
}

fn assert_same(tag: &str, point: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.cycles, b.cycles, "{point}: {tag} cycle count diverged");
    assert_eq!(a.activity, b.activity, "{point}: {tag} activity diverged");
    assert_eq!(a.outputs.len(), b.outputs.len(), "{point}: {tag} arity");
    for (i, (x, y)) in a.outputs.iter().zip(&b.outputs).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{point}: {tag} output {i} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn interpreted_packed_and_decoded_paths_are_bit_identical() {
    let configs = [
        (1u32, 4u32, 16u32),
        (2, 8, 16),
        (2, 8, 32),
        (3, 16, 32),
        (2, 8, 6), // tiny R: forces spill stores/loads into the program
    ];
    let mut interp_machine = Machine::new(ArchConfig::new(1, 2, 2).unwrap());
    let mut decoded_machine = Machine::new(ArchConfig::new(1, 2, 2).unwrap());
    let mut points = 0;
    for seed in 0..10u64 {
        let (dag, inputs) = random_dag(1000 + seed);
        for (d, bk, r) in configs {
            let cfg = ArchConfig::new(d, bk, r).unwrap();
            let compiled = match compile(&dag, &cfg, &CompileOptions::default()) {
                Ok(c) => c,
                // A config too small for this DAG is not a differential
                // point; skip rather than weaken the config set.
                Err(_) => continue,
            };
            let point = format!("seed {seed} cfg {d}/{bk}/{r}");
            let interp = run_on(&mut interp_machine, &compiled, &inputs).unwrap();
            let packed = run_packed_path(&compiled, &inputs);
            let decoded_prog = DecodedProgram::decode(&compiled.program).unwrap();
            let decoded =
                run_decoded_on(&mut decoded_machine, &compiled, &decoded_prog, &inputs).unwrap();
            assert_same("packed", &point, &interp, &packed);
            assert_same("decoded", &point, &interp, &decoded);
            points += 1;
        }
    }
    assert!(points >= 45, "only {points} differential points ran");
}
