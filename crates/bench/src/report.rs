//! Machine-readable bench reports: a minimal JSON value type with a
//! renderer and parser, plus the shared `--json <path>` flag handling.
//!
//! The vendored `serde` stub has no serializer (the real workspace never
//! needed one at runtime), so the bench binaries build their perf lines
//! through this module instead: [`Json`] is a tiny JSON document model,
//! rendered deterministically (object keys keep insertion order) and
//! parsed back by the `bench_gate` binary when it compares a fresh
//! `BENCH_serving.json` against the committed `bench/baseline.json`.

use std::fmt::Write as _;

use dpu_core::runtime::LatencyHistogram;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, rendered as written.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the document as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module renders, which is
    /// all the bench files contain).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

/// Renders a latency histogram as the standard quantile row every
/// serving bench emits: count, p50/p99/p999, max, mean. `scale`
/// converts the recorded unit into the reported one (1.0 keeps modelled
/// cycles as-is; `1e-3` renders nanoseconds as microseconds).
pub fn latency_row(h: &LatencyHistogram, scale: f64) -> Json {
    Json::obj()
        .field("count", h.count())
        .field("p50", h.p50() as f64 * scale)
        .field("p99", h.p99() as f64 * scale)
        .field("p999", h.p999() as f64 * scale)
        .field("max", h.max() as f64 * scale)
        .field("mean", h.mean() * scale)
}

/// Extracts the value of a `--json <path>` flag from command-line
/// arguments (`None` when absent). Shared by every serving bench binary.
///
/// # Panics
///
/// Panics (with a usage message) if `--json` is present without a path.
pub fn json_path_flag() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            let path = args.next().expect("usage: --json <path>");
            return Some(path.into());
        }
        if let Some(path) = arg.strip_prefix("--json=") {
            return Some(path.into());
        }
    }
    None
}

/// Emits a bench report: always prints the compact JSON line to stdout,
/// and additionally writes it (newline-terminated) to `path` when the
/// `--json` flag was given.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn emit(report: &Json, path: Option<&std::path::Path>) {
    let line = report.render();
    println!("{line}");
    if let Some(path) = path {
        std::fs::write(path, line + "\n")
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_report() {
        let doc = Json::obj()
            .field("bench", "async_serving")
            .field("requests", 500u64)
            .field("simulated_gops", 12.51)
            .field("verified", true)
            .field("families", Json::Arr(vec!["pc".into(), "sptrsv".into()]))
            .field(
                "nested",
                Json::obj().field("a", 1u64).field("b", Json::Null),
            );
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Integers render without a decimal point, floats keep one.
        assert!(text.contains("\"requests\":500"));
        assert!(text.contains("\"simulated_gops\":12.51"));
    }

    #[test]
    fn latency_row_scales_and_names_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in [1_000u64, 2_000, 4_000, 8_000] {
            h.record(v);
        }
        let row = latency_row(&h, 1e-3);
        assert_eq!(row.get("count").and_then(Json::as_f64), Some(4.0));
        assert_eq!(
            row.get("max").and_then(Json::as_f64),
            Some(8.0),
            "ns render as µs at 1e-3"
        );
        let p50 = row.get("p50").and_then(Json::as_f64).unwrap();
        assert!((2.0..=2.2).contains(&p50), "p50 {p50}");
        assert!(row.get("p99").is_some() && row.get("p999").is_some());
    }

    #[test]
    fn parses_pretty_printed_input() {
        let text = "{\n  \"a\": [1, 2.5, -3e2],\n  \"s\": \"x\\\"y\\n\"\n}";
        let doc = Json::parse(text).unwrap();
        assert_eq!(
            doc.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\"y\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        // Truncated \u escape must be an Err, not a slice panic.
        assert!(Json::parse("\"\\u12").is_err());
        assert!(Json::parse("\"\\uZZZZ\"").is_err());
    }
}
