//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (see DESIGN.md §3 for the index); this library holds the
//! common plumbing: suite loading at a configurable scale, DPU-v2
//! compile+simulate+measure runs, baseline evaluation, and plain-text
//! table/series rendering.
//!
//! ## Scale
//!
//! The published workload sizes (9k–79k nodes, large PCs up to 3.3M) make
//! some sweeps slow in a test setting. The `DPU_SCALE` environment
//! variable (default `1.0` for per-workload figures, smaller inside the
//! 48-point DSE) scales node counts; every binary prints the scale it ran
//! at so EXPERIMENTS.md can record it.

pub mod experiments;
pub mod report;

use dpu_core::prelude::*;
use dpu_core::sim;
use dpu_core::workloads::pc::pc_inputs;
use dpu_core::workloads::suite::{self, BenchmarkSpec, WorkloadClass};

/// Reads the workload scale from `DPU_SCALE` (clamped to `(0, 1]`).
pub fn env_scale(default: f64) -> f64 {
    std::env::var("DPU_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default)
        .clamp(0.01, 1.0)
}

/// A generated workload ready to run: DAG plus matching inputs.
pub struct Workload {
    /// Benchmark metadata.
    pub spec: BenchmarkSpec,
    /// The DAG at the requested scale.
    pub dag: Dag,
    /// Input values appropriate for the workload class.
    pub inputs: Vec<f32>,
}

/// Generates inputs appropriate for a workload class.
pub fn inputs_for(spec: &BenchmarkSpec, dag: &Dag) -> Vec<f32> {
    match spec.class {
        // Log-probabilities for PCs.
        WorkloadClass::Pc | WorkloadClass::LargePc => pc_inputs(dag, spec.seed),
        // SpTRSV DAG inputs are b values then matrix values; a smooth
        // deterministic pattern keeps the solve well conditioned.
        WorkloadClass::SpTrsv => (0..dag.input_count())
            .map(|i| 0.6 + 0.8 * ((i as f32 * 0.7).sin().abs()))
            .collect(),
    }
}

/// Loads the small suite (Table I(a)+(b)) at `scale`.
pub fn load_small_suite(scale: f64) -> Vec<Workload> {
    suite::small_suite()
        .into_iter()
        .map(|spec| {
            let dag = spec.generate_scaled(scale);
            let inputs = inputs_for(&spec, &dag);
            Workload { spec, dag, inputs }
        })
        .collect()
}

/// Loads the large-PC suite (Table I(c)) at `scale`.
pub fn load_large_suite(scale: f64) -> Vec<Workload> {
    suite::large_pc_suite()
        .into_iter()
        .map(|spec| {
            let dag = spec.generate_scaled(scale);
            let inputs = inputs_for(&spec, &dag);
            Workload { spec, dag, inputs }
        })
        .collect()
}

/// One DPU-v2 measurement of a workload.
pub struct DpuRun {
    /// Compiler output (stats, layout, program).
    pub compiled: Compiled,
    /// Simulator result.
    pub run: RunResult,
    /// Derived metrics.
    pub metrics: Metrics,
}

/// Compiles and simulates one workload on `dpu`, panicking with context on
/// failure (experiment binaries want loud failures).
pub fn measure(dpu: &Dpu, w: &Workload) -> DpuRun {
    let compiled = dpu
        .compile(&w.dag)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.spec.name));
    let run = dpu
        .execute(&compiled, &w.inputs)
        .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", w.spec.name));
    let metrics = dpu.metrics(&run);
    DpuRun {
        compiled,
        run,
        metrics,
    }
}

/// Like [`measure`] but verifying outputs against the reference evaluator.
pub fn measure_verified(dpu: &Dpu, w: &Workload) -> DpuRun {
    let compiled = dpu
        .compile(&w.dag)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.spec.name));
    let rep = dpu
        .execute_verified(&compiled, &w.inputs)
        .unwrap_or_else(|e| panic!("{}: verification failed: {e}", w.spec.name));
    let metrics = dpu.metrics(&rep.result);
    DpuRun {
        compiled,
        run: rep.result,
        metrics,
    }
}

/// Throughput in GOPS for a simulated run at the calibrated frequency.
pub fn gops(run: &RunResult) -> f64 {
    sim::throughput_ops(run, dpu_core::energy::calib::FREQ_HZ) / 1e9
}

/// Renders a plain-text table: a header row and aligned columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("== {title} ==\n");
    let line = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&line(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "t",
            &["name", "x"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "2.50".into()],
            ],
        );
        assert!(t.contains("== t =="));
        assert!(t.contains("longer  2.50"));
    }

    #[test]
    fn tiny_workload_measures() {
        let spec = suite::tiny_suite().remove(0);
        let dag = spec.generate();
        let inputs = inputs_for(&spec, &dag);
        let w = Workload { spec, dag, inputs };
        let dpu = Dpu::new(ArchConfig::new(2, 8, 32).unwrap());
        let r = measure_verified(&dpu, &w);
        assert!(r.run.cycles > 0);
        assert!(gops(&r.run) > 0.0);
    }
}
