//! Async sharded serving benchmark — the continuous-ingestion counterpart
//! of `serving_throughput`, and the source of CI's `BENCH_serving.json`.
//!
//! Eight phases, all but the microbenches over the same 600-request,
//! 3-family mixed stream:
//!
//! 1. **Gated phase** (deterministic): a 4-shard dispatcher with work
//!    stealing off and an effectively infinite latency budget serves the
//!    whole stream (submit → drain). Round composition, routing, cache
//!    behavior and the modelled clock are then pure functions of the
//!    stream, so `simulated_gops`, `cache_hit_rate`, `shard_balance` and
//!    the per-request **modelled service-time histogram**
//!    (`latency.deterministic`, in simulated cycles) are bit-stable
//!    across machines. The same stream is re-served on a 2-shard layout
//!    and the merged per-shard histograms are asserted *byte-identical*
//!    (`merge_invariant`) — the histogram merge is order-independent, so
//!    sharding cannot change the distribution. Of these, `bench_gate`
//!    compares `simulated_gops`, the cache miss rate, and
//!    `latency.deterministic.p50`/`p99` against `bench/baseline.json`;
//!    the rest are recorded for trajectory. (Fields prefixed `host_` —
//!    including `latency.deterministic.host_mean_queueing_delay_us` —
//!    are wall-clock observability riders and machine-dependent.)
//! 2. **Multi-backend comparison** (deterministic, gated): a 2-primary
//!    DPU-v2 dispatcher mirrored by one analytic baseline shard per
//!    `--baseline <platform>` flag (default `cpu,gpu`; also `dpu_v1`,
//!    `spu`) serves the stream once more. Tickets stay on the DPU shards
//!    (verified byte-identical to serial); the mirrors shadow every
//!    request, and the report's `baseline_compare` section carries live
//!    per-platform throughput/GOPS/EDP — the paper's §V-C comparison at
//!    serving time. Throughputs are pure functions of the stream and the
//!    platform models, so `bench_gate` ratchets them.
//! 3. **Open-loop phase** (observability): a 2-shard dispatcher with
//!    stealing on replays uniform, Poisson and bursty arrival schedules
//!    (with Zipf family skew) through `Submitter::submit_at`, so each
//!    request's timeline is charged from its *scheduled* arrival. Per
//!    pattern the report carries host-side response-time quantiles
//!    (p50/p99/p999 end-to-end, queueing/batching/service breakdowns)
//!    plus steal/close statistics. Timing-dependent, therefore the
//!    host-time numbers are recorded, not gated.
//! 4. **Machine-scratch microbench**: the same compiled program run with
//!    a fresh `Machine` per request (the old allocating hot path) vs one
//!    reused machine (`Machine::reset` + per-machine scratch buffers) —
//!    the before/after of the simulator hot-path optimization.
//! 5. **Decoded execution** (gated): the same compiled program decoded
//!    once into its flat micro-op form and run over the phase-4 inputs on
//!    one reused machine — the interpreted-vs-decoded single-machine
//!    speedup (a same-machine timing ratio; `bench_gate` ratchets it and
//!    enforces a hard ≥2× floor). The gated stream is then re-served in
//!    fixed-size rounds through `Engine::execute_round`, which groups
//!    each round by program so one decoded form serves every request of a
//!    family — outputs byte-identical to the serial reference, the
//!    grouping ratio (jobs per program group, a pure function of the
//!    stream) gated, and the repeat-program throughput recorded.
//! 6. **Cache persistence** (deterministic, gated): a cold engine over an
//!    empty spill directory serves the stream (compiling and spilling
//!    each family once), then a **restarted** engine over the same
//!    directory serves it again — the `cache_persist` section records the
//!    warm-restart hit rate (gated at 1.0: a restart must never compile)
//!    and the peer pre-warm count (`Engine::prewarm` loading every
//!    program before traffic). Warm results are verified byte-identical
//!    to the cold ones and to the serial reference.
//! 7. **Graceful degradation** (gated): a priority-annotated stream at
//!    2× the saturation rate hits a dispatcher with bounded admission
//!    (`queue_capacity`) and 40 ms deadlines on `Interactive` traffic.
//!    The `graceful_degradation` section reports per-class accepted /
//!    completed / shed / rejected counts — `bench_gate` recomputes
//!    `offered == completed + failed + shed + rejected` exactly,
//!    requires interactive p99 within its budget, and ratchets the
//!    interactive goodput ratio. Overload must degrade honestly, never
//!    silently.
//! 8. **Chaos recovery** (gated): the gated stream replays open-loop at
//!    2× saturation against four supervised shards while a scripted
//!    `ChaosPlan` kills one shard after its second round and stalls a
//!    second one every round, with hedging covering the straggler.
//!    Recovery must be loss-free: the `chaos` section's
//!    `lost_tickets`/`failed` must be zero, `recovered ≥ 1` (the dead
//!    shard's rounds provably moved through the lease/requeue path),
//!    every completion is verified byte-identical to the serial
//!    reference, and `bench_gate` re-checks the invariants and the
//!    per-class ledger.
//!
//! Every serving phase's outputs are verified byte-identical against a
//! serial reference pass. Run with
//! `cargo run --release -p dpu-bench --bin async_serving --
//! [--json <path>] [--baseline <cpu|gpu|dpu_v1|spu>]...
//! [--spill <dir>]`.

use std::time::{Duration, Instant};

use dpu_bench::report::{emit, json_path_flag, latency_row, Json};
use dpu_core::prelude::*;
use dpu_core::workloads::pc::{generate_pc, pc_inputs, PcParams};
use dpu_core::workloads::sparse::{generate_lower_triangular, LowerTriangularParams, SpmvDag};
use dpu_core::workloads::sptrsv::SptrsvDag;
use dpu_core::workloads::traffic::{
    open_loop_schedule, ArrivalPattern, PriorityClass, PriorityMix, TrafficParams,
};
use dpu_core::{energy, runtime, sim};

const REQUESTS: usize = 600;
const GATED_SHARDS: usize = 4;

struct Family {
    name: &'static str,
    dag: Dag,
    inputs: Box<dyn Fn(usize) -> Vec<f32>>,
}

fn families() -> Vec<Family> {
    let mut out = Vec::new();
    let pc = generate_pc(&PcParams::with_targets(1_800, 13), 51);
    {
        let d = pc.clone();
        out.push(Family {
            name: "pc",
            dag: pc,
            inputs: Box::new(move |i| pc_inputs(&d, i as u64)),
        });
    }
    let l = generate_lower_triangular(&LowerTriangularParams::for_target_path(120, 2.0, 20), 52);
    let trsv = SptrsvDag::build(&l);
    {
        let dag = trsv.dag.clone();
        out.push(Family {
            name: "sptrsv",
            dag,
            inputs: Box::new(move |i| {
                let b: Vec<f32> = (0..l.dim)
                    .map(|j| 1.0 + 0.5 * (((i + j) as f32) * 0.37).sin())
                    .collect();
                trsv.inputs(&l, &b)
            }),
        });
    }
    let a = generate_lower_triangular(
        &LowerTriangularParams {
            dim: 150,
            avg_nnz_per_row: 4.0,
            band_fraction: 0.7,
            band: 10,
        },
        53,
    );
    let spmv = SpmvDag::build(&a);
    {
        let dag = spmv.dag.clone();
        out.push(Family {
            name: "sparse",
            dag,
            inputs: Box::new(move |i| {
                let x: Vec<f32> = (0..a.dim)
                    .map(|j| 0.5 + 0.3 * (((2 * i + j) as f32) * 0.23).cos())
                    .collect();
                spmv.inputs(&a, &x)
            }),
        });
    }
    out
}

/// Asserts `got` is bit-identical to `want` (outputs and cycles).
fn assert_identical(got: &RunResult, want: &RunResult, ctx: &str) {
    let got_bits: Vec<u32> = got.outputs.iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u32> = want.outputs.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits, "{ctx}: outputs differ");
    assert_eq!(got.cycles, want.cycles, "{ctx}: cycles differ");
}

/// Extracts every `--baseline <p>` / `--baseline=<p>` flag (values may be
/// comma-separated). Defaults to `cpu,gpu` so `BENCH_serving.json` always
/// carries the comparison section CI gates.
fn baseline_flags() -> Vec<BaselineModel> {
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = if arg == "--baseline" {
            Some(args.next().expect("usage: --baseline <platform>"))
        } else {
            arg.strip_prefix("--baseline=").map(str::to_string)
        };
        if let Some(v) = value {
            names.extend(v.split(',').map(|s| s.trim().to_string()));
        }
    }
    if names.is_empty() {
        names = vec!["cpu".into(), "gpu".into()];
    }
    names
        .iter()
        .map(|n| {
            BaselineModel::by_name(n)
                .unwrap_or_else(|| panic!("unknown baseline `{n}` (cpu|gpu|dpu_v1|spu)"))
        })
        .collect()
}

/// `--spill <dir>` / `--spill=<dir>`: where the persistence phase keeps
/// its spill files (CI uploads this directory as an artifact). Defaults
/// to a per-process temp-dir location (unique so concurrent invocations
/// never clobber one another mid-phase).
///
/// The cold phase needs a cold start, so existing **spill files** in the
/// directory are removed — only `*.dpuc` and leftover spill temp files,
/// never the directory tree: an operator pointing `--spill` at a real
/// (or mistyped) path must not lose unrelated data to a benchmark.
fn spill_flag() -> std::path::PathBuf {
    let mut args = std::env::args().skip(1);
    let mut dir = None;
    while let Some(arg) = args.next() {
        if arg == "--spill" {
            dir = Some(args.next().expect("usage: --spill <dir>"));
        } else if let Some(v) = arg.strip_prefix("--spill=") {
            dir = Some(v.to_string());
        }
    }
    let dir = dir.map_or_else(
        || std::env::temp_dir().join(format!("dpu_async_serving_spill_{}", std::process::id())),
        std::path::PathBuf::from,
    );
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.extension().and_then(|e| e.to_str()) == Some("dpuc")
                || name.starts_with(".tmp-")
            {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
    dir
}

#[allow(clippy::too_many_lines)]
fn main() {
    let json_path = json_path_flag();
    let dpu = Dpu::large();
    let freq = energy::calib::FREQ_HZ;
    let fams = families();

    // One schedule drives every phase: uniform family mix, Poisson times.
    let schedule = open_loop_schedule(&TrafficParams {
        requests: REQUESTS,
        rate_per_sec: 3_000.0,
        pattern: ArrivalPattern::Poisson,
        families: fams.len(),
        skew: 0.0,
        seed: 61,
        priorities: PriorityMix::default(),
    });
    let build_request = |engine_keys: &[DagKey], i: usize| {
        let a = &schedule[i];
        Request::new(engine_keys[a.family], (fams[a.family].inputs)(a.seq))
    };

    // Serial reference pass: one engine, one machine, arrival order.
    let ref_engine = dpu.engine(EngineOptions::default());
    let ref_keys: Vec<DagKey> = fams
        .iter()
        .map(|f| ref_engine.register(f.dag.clone()))
        .collect();
    let ref_stream: Vec<Request> = (0..REQUESTS).map(|i| build_request(&ref_keys, i)).collect();
    let reference = ref_engine
        .serve_serial(&ref_stream)
        .expect("serial reference succeeds");

    // Phase 1: deterministic gated run on GATED_SHARDS replica shards.
    let gated = dpu.dispatcher(DispatchOptions {
        shards: GATED_SHARDS,
        max_batch: 32,
        max_wait: Duration::from_secs(3600), // never: rounds close by size/flush
        work_stealing: false,                // keep routing deterministic
        ..Default::default()
    });
    let keys: Vec<DagKey> = fams.iter().map(|f| gated.register(f.dag.clone())).collect();
    let submitter = gated.submitter();
    let gated_host = Instant::now();
    let tickets: Vec<Ticket> = (0..REQUESTS)
        .map(|i| submitter.submit(build_request(&keys, i)).expect("accepted"))
        .collect();
    gated.drain();
    let gated_host_seconds = gated_host.elapsed().as_secs_f64();
    for (i, t) in tickets.into_iter().enumerate() {
        let got = t.wait().expect("request succeeds");
        assert_identical(&got, &reference.results[i], &format!("gated request {i}"));
    }
    let gated_report = gated.shutdown();
    assert_eq!(gated_report.served, REQUESTS as u64, "loss-free drain");
    let gated_cache = gated_report.cache_totals();
    assert_eq!(
        gated_report.latency.service_cycles.count(),
        REQUESTS as u64,
        "every served request recorded a modelled service time"
    );

    // Merge invariant: the same stream on a 2-shard layout must merge to
    // a byte-identical modelled service-time histogram — the multiset of
    // per-request cycles is a pure function of the stream, and the
    // histogram merge is associative and order-independent, so shard
    // count cannot perturb the gated latency distribution.
    let two_shard = dpu.dispatcher(DispatchOptions {
        shards: 2,
        max_batch: 32,
        max_wait: Duration::from_secs(3600),
        work_stealing: false,
        ..Default::default()
    });
    let keys: Vec<DagKey> = fams
        .iter()
        .map(|f| two_shard.register(f.dag.clone()))
        .collect();
    let submitter = two_shard.submitter();
    let two_tickets: Vec<Ticket> = (0..REQUESTS)
        .map(|i| submitter.submit(build_request(&keys, i)).expect("accepted"))
        .collect();
    two_shard.drain();
    drop(two_tickets);
    let two_shard_report = two_shard.shutdown();
    assert_eq!(
        gated_report.latency.service_cycles.to_bytes(),
        two_shard_report.latency.service_cycles.to_bytes(),
        "merged per-shard latency histograms must be byte-identical \
         across 2-shard and 4-shard runs"
    );
    let merge_invariant = true;

    // Phase 2: multi-backend comparison. Two DPU-v2 primaries serve the
    // stream (tickets, verified below) while one mirror shard per
    // requested baseline platform shadows every request — live per-
    // platform throughput from one dispatcher run. Stealing off and an
    // infinite latency budget keep per-shard round composition, and
    // therefore every platform's modelled makespan, a pure function of
    // the stream.
    let baselines = baseline_flags();
    let mirror = dpu.mirrored_dispatcher(
        DispatchOptions {
            shards: 2,
            max_batch: 32,
            max_wait: Duration::from_secs(3600),
            work_stealing: false,
            ..Default::default()
        },
        &baselines,
    );
    let keys: Vec<DagKey> = fams
        .iter()
        .map(|f| mirror.register(f.dag.clone()))
        .collect();
    let submitter = mirror.submitter();
    let mirror_tickets: Vec<Ticket> = (0..REQUESTS)
        .map(|i| submitter.submit(build_request(&keys, i)).expect("accepted"))
        .collect();
    mirror.drain();
    for (i, t) in mirror_tickets.into_iter().enumerate() {
        let got = t.wait().expect("request succeeds");
        assert_identical(
            &got,
            &reference.results[i],
            &format!("mirrored request {i}"),
        );
    }
    let mirror_report = mirror.shutdown();
    assert_eq!(mirror_report.served, REQUESTS as u64, "loss-free drain");
    assert_eq!(
        mirror_report.mirrored,
        (REQUESTS * baselines.len()) as u64,
        "every baseline shadowed every request"
    );
    // The DPU has no flat power figure; derive its average from the
    // activity-based energy model over the (deterministic) reference
    // results, so the dpu_v2 row carries an EDP too.
    let dpu_power_w = {
        let total_pj: f64 = reference
            .results
            .iter()
            .map(|r| energy::energy_pj(&dpu.config, &r.activity, r.cycles))
            .sum();
        let total_s: f64 = reference.results.iter().map(|r| r.cycles).sum::<u64>() as f64 / freq;
        total_pj * 1e-12 / total_s.max(1e-30)
    };
    let baseline_compare = {
        let mut platforms = Json::obj();
        for mut p in mirror_report.platforms() {
            if p.platform == "dpu_v2" && p.power_w.is_none() {
                // Overlay the energy-model average as the per-device
                // power, so the DPU row carries an EDP too.
                p.power_w = Some(dpu_power_w);
            }
            let power_w = p.power_w;
            let gops = p.gops(freq);
            let edp = p.edp_pj_ns(freq);
            let mut row = Json::obj()
                .field("mirror", p.mirror)
                .field("shards", p.shards)
                .field("requests", p.requests)
                .field("dag_ops", p.dag_ops)
                .field("modelled_cycles", p.modelled_cycles)
                .field("throughput_gops", gops);
            row = match power_w {
                Some(w) => row.field("power_w", w),
                None => row.field("power_w", Json::Null),
            };
            row = match edp {
                Some(e) => row.field("edp_pj_ns", e),
                None => row.field("edp_pj_ns", Json::Null),
            };
            platforms = platforms.field(p.platform, row);
        }
        Json::obj()
            .field("requests", REQUESTS)
            .field(
                "primary_shards",
                mirror_report.shards.iter().filter(|s| !s.mirror).count(),
            )
            .field("mirrored", mirror_report.mirrored)
            .field("verified", true)
            .field("platforms", platforms)
    };

    let shard_arr = |r: &DispatchReport| {
        Json::Arr(
            r.shards
                .iter()
                .map(|s| {
                    Json::obj()
                        .field("requests", s.requests)
                        .field("rounds", s.rounds)
                        .field("stolen_rounds", s.stolen_rounds)
                        .field("modelled_cycles", s.modelled_cycles)
                        .field("cache_hit_rate", s.cache.hit_rate())
                        .field("compiles", s.cache.misses)
                })
                .collect(),
        )
    };

    // Phase 3: open-loop replays with stealing on, one per arrival
    // pattern × Zipf skew, each paced by its schedule and submitted with
    // `submit_at` so per-request latency is charged from the *scheduled*
    // arrival. Outputs verified against a serial pass per pattern.
    let open_patterns: [(ArrivalPattern, f64, u64); 3] = [
        (ArrivalPattern::Poisson, 0.0, 61),
        (ArrivalPattern::Uniform, 0.5, 62),
        (ArrivalPattern::Bursty { burst: 16 }, 0.8, 63),
    ];
    let mut open_loop_json = Json::obj();
    let mut open_latency_json = Json::obj();
    for (pattern, skew, seed) in open_patterns {
        let schedule = open_loop_schedule(&TrafficParams {
            requests: REQUESTS,
            rate_per_sec: 3_000.0,
            pattern,
            families: fams.len(),
            skew,
            seed,
            priorities: PriorityMix::default(),
        });
        let stream: Vec<Request> = schedule
            .iter()
            .map(|a| Request::new(ref_keys[a.family], (fams[a.family].inputs)(a.seq)))
            .collect();
        let pattern_ref = ref_engine
            .serve_serial(&stream)
            .expect("serial reference succeeds");
        let open = dpu.dispatcher(DispatchOptions {
            shards: 2,
            max_batch: 24,
            max_wait: Duration::from_micros(500),
            work_stealing: true,
            ..Default::default()
        });
        let keys: Vec<DagKey> = fams.iter().map(|f| open.register(f.dag.clone())).collect();
        let submitter = open.submitter();
        let replay_start = Instant::now();
        let mut open_tickets = Vec::with_capacity(REQUESTS);
        for arrival in &schedule {
            if let Some(wait) = arrival.at.checked_sub(replay_start.elapsed()) {
                std::thread::sleep(wait);
            }
            let request = Request::new(
                keys[arrival.family],
                (fams[arrival.family].inputs)(arrival.seq),
            );
            open_tickets.push(
                submitter
                    .submit_with(request, SubmitOptions::at(arrival.instant(replay_start)))
                    .expect("accepted"),
            );
        }
        open.drain();
        let open_host_seconds = replay_start.elapsed().as_secs_f64();
        for (i, t) in open_tickets.into_iter().enumerate() {
            let got = t.wait().expect("request succeeds");
            assert_identical(
                &got,
                &pattern_ref.results[i],
                &format!("open-loop {} request {i}", pattern.name()),
            );
        }
        let open_report = open.shutdown();
        assert_eq!(open_report.served, REQUESTS as u64, "loss-free drain");
        let lat = &open_report.latency;
        open_latency_json = open_latency_json.field(
            pattern.name(),
            Json::obj()
                .field("unit", "us")
                .field("offered_rps", 3_000.0)
                .field("skew", skew)
                .field("total", latency_row(&lat.total_ns, 1e-3))
                .field("queueing", latency_row(&lat.queueing_ns, 1e-3))
                .field("batching", latency_row(&lat.batching_ns, 1e-3))
                .field("service", latency_row(&lat.service_ns, 1e-3))
                .field("mean_queueing_delay_us", lat.queueing_ns.mean() * 1e-3),
        );
        open_loop_json = open_loop_json.field(
            pattern.name(),
            Json::obj()
                .field("shards", open_report.shards.len())
                .field("offered_rps", 3_000.0)
                .field("skew", skew)
                .field("host_seconds", open_host_seconds)
                // The dispatcher's own clocks: serving window (first
                // accept → last completion) vs construction → shutdown.
                .field("serving_window_seconds", open_report.host_seconds)
                .field("lifetime_seconds", open_report.lifetime_seconds)
                .field("rounds_closed_full", open_report.rounds_closed_full)
                .field("rounds_closed_timer", open_report.rounds_closed_timer)
                .field("rounds_closed_flush", open_report.rounds_closed_flush)
                .field("steal_rate", open_report.steal_rate())
                .field("shard_balance", open_report.shard_balance())
                .field("shards_detail", shard_arr(&open_report)),
        );
    }

    // Phase 4: machine-scratch before/after. Same program, same inputs:
    // a fresh Machine per request (per-request allocation, the pre-scratch
    // hot path) vs one reused machine (reset + scratch buffers).
    let compiled = dpu.compile(&fams[0].dag).expect("compiles");
    let scratch_inputs: Vec<Vec<f32>> = (0..200).map(|i| (fams[0].inputs)(i)).collect();
    let t0 = Instant::now();
    for inputs in &scratch_inputs {
        let fresh = sim::run(&compiled, inputs).expect("runs"); // allocates per request
        std::hint::black_box(fresh);
    }
    let fresh_seconds = t0.elapsed().as_secs_f64();
    let mut machine = sim::Machine::new(*ref_engine.config());
    let t1 = Instant::now();
    for inputs in &scratch_inputs {
        let reused = sim::run_on(&mut machine, &compiled, inputs).expect("runs");
        std::hint::black_box(reused);
    }
    let reused_seconds = t1.elapsed().as_secs_f64();

    // Phase 5: decoded execution. Decode the phase-4 program once into
    // its flat micro-op form and run the same inputs on the same reused
    // machine: the interpreted-vs-decoded single-machine speedup. The
    // timing loop is followed by an untimed verification pass asserting
    // every decoded result byte-identical to the interpreter's.
    let decoded = sim::DecodedProgram::decode(&compiled.program).expect("decodes");
    let t2 = Instant::now();
    for inputs in &scratch_inputs {
        let run = sim::run_decoded_on(&mut machine, &compiled, &decoded, inputs).expect("runs");
        std::hint::black_box(run);
    }
    let decoded_seconds = t2.elapsed().as_secs_f64();
    for (i, inputs) in scratch_inputs.iter().enumerate() {
        let want = sim::run_on(&mut machine, &compiled, inputs).expect("runs");
        let got = sim::run_decoded_on(&mut machine, &compiled, &decoded, inputs).expect("runs");
        assert_identical(&got, &want, &format!("decoded run {i}"));
        assert_eq!(got.activity, want.activity, "decoded run {i}: activity");
    }
    let single_machine_speedup = reused_seconds / decoded_seconds.max(1e-9);

    // One-program/many-inputs round execution: re-serve the gated stream
    // in fixed-size rounds through `Engine::execute_round`, which groups
    // each round by program so every request of a family runs off one
    // shared decoded form. The grouping ratio (jobs per program group) is
    // a pure function of the stream; outputs are verified byte-identical
    // to the serial reference as they are produced.
    let round_engine = dpu.engine(EngineOptions::default());
    let round_keys: Vec<DagKey> = fams
        .iter()
        .map(|f| round_engine.register(f.dag.clone()))
        .collect();
    let round_stream: Vec<Request> = (0..REQUESTS)
        .map(|i| build_request(&round_keys, i))
        .collect();
    let round_batch = 32usize;
    let mut round_machine = sim::Machine::new(*ref_engine.config());
    let (mut round_jobs, mut round_groups, mut verified_rounds) = (0usize, 0usize, 0usize);
    let t3 = Instant::now();
    for (chunk_no, chunk) in round_stream.chunks(round_batch).enumerate() {
        let mut programs: Vec<DagKey> = Vec::new();
        for r in chunk {
            if !programs.contains(&r.dag) {
                programs.push(r.dag);
            }
        }
        round_jobs += chunk.len();
        round_groups += programs.len();
        let refs: Vec<&Request> = chunk.iter().collect();
        for (j, outcome) in round_engine
            .execute_round(&mut round_machine, &refs)
            .into_iter()
            .enumerate()
        {
            let i = chunk_no * round_batch + j;
            let got = outcome.expect("request succeeds");
            assert_identical(&got, &reference.results[i], &format!("round request {i}"));
        }
        verified_rounds += 1;
    }
    let round_seconds = t3.elapsed().as_secs_f64();
    let round_grouping_ratio = round_jobs as f64 / round_groups.max(1) as f64;
    let decode_count = round_engine.cache_stats().decode_count;
    assert_eq!(
        decode_count,
        fams.len() as u64,
        "one decode per family, shared across {verified_rounds} rounds"
    );

    // Phase 6: cache persistence. Cold engine over an empty spill dir
    // (compiles once per family, spills each program), then a restarted
    // engine over the same dir (must serve with zero compiles), then a
    // peer shard pre-warming every program before traffic. All outputs
    // verified byte-identical to the serial reference, so spilled-and-
    // reloaded programs provably equal freshly compiled ones.
    let spill_dir = spill_flag();
    let persist_opts = EngineOptions {
        spill_dir: Some(spill_dir.clone()),
        ..Default::default()
    };
    let serve_and_verify = |engine: &Engine, label: &str| {
        let keys: Vec<DagKey> = fams
            .iter()
            .map(|f| engine.register(f.dag.clone()))
            .collect();
        let stream: Vec<Request> = (0..REQUESTS).map(|i| build_request(&keys, i)).collect();
        let report = engine.serve(&stream);
        assert!(report.failures.is_empty(), "{label}: failures");
        for (i, r) in report.results.iter().enumerate() {
            assert_identical(r, &reference.results[i], &format!("{label} request {i}"));
        }
    };
    let cold_engine = dpu.engine(persist_opts.clone());
    serve_and_verify(&cold_engine, "cold");
    let cold_stats = cold_engine.cache_stats();
    assert_eq!(
        cold_stats.spill_writes,
        fams.len() as u64,
        "every cold compile spilled"
    );
    drop(cold_engine);
    let warm_engine = dpu.engine(persist_opts.clone());
    serve_and_verify(&warm_engine, "warm-restart");
    let warm_stats = warm_engine.cache_stats();
    assert_eq!(warm_stats.misses, 0, "a warm restart must not compile");
    drop(warm_engine);
    let peer_engine = dpu.engine(persist_opts);
    let prewarm_loaded = peer_engine.prewarm();
    assert_eq!(
        prewarm_loaded,
        fams.len(),
        "peer pre-warm loads every spilled program"
    );
    serve_and_verify(&peer_engine, "pre-warmed peer");
    let peer_stats = peer_engine.cache_stats();
    assert_eq!(peer_stats.misses, 0, "a pre-warmed shard must not compile");

    // Phase 7: graceful degradation under overload (gated). The
    // dispatcher is driven at 2× the saturation rate established by the
    // PR-5 queueing data (at ~3000 rps mean queueing delay reaches tens
    // of milliseconds against sub-millisecond service), with bounded
    // per-shard admission, a 30/40/30 interactive/standard/batch mix,
    // and a 40 ms deadline on every interactive request. The open-loop
    // client drops `WouldBlock` rejections (no retry). The gate checks
    // that the accounting is honest (offered == completed + shed +
    // rejected, exactly, per class and in total), that served
    // interactive traffic stays inside its latency budget (p99 and the
    // goodput ratio below), and that interactive completions never drop
    // to zero — overload must degrade, not collapse or lie.
    const SATURATION_RPS: f64 = 3_000.0;
    let degraded_rps = 2.0 * SATURATION_RPS;
    let degrade_requests: usize = 900;
    let queue_capacity: usize = 96;
    let interactive_deadline = Duration::from_millis(40);
    let p99_budget_ms = 120.0;
    let degrade_schedule = open_loop_schedule(&TrafficParams {
        requests: degrade_requests,
        rate_per_sec: degraded_rps,
        pattern: ArrivalPattern::Poisson,
        families: fams.len(),
        skew: 0.0,
        seed: 64,
        priorities: PriorityMix::new(0.3, 0.3),
    });
    let degrade = dpu.dispatcher(DispatchOptions {
        shards: 2,
        max_batch: 24,
        max_wait: Duration::from_micros(500),
        work_stealing: true,
        queue_capacity: Some(queue_capacity),
        ..Default::default()
    });
    let keys: Vec<DagKey> = fams
        .iter()
        .map(|f| degrade.register(f.dag.clone()))
        .collect();
    let submitter = degrade.submitter();
    let class_index = |c: PriorityClass| match c {
        PriorityClass::Interactive => 0usize,
        PriorityClass::Standard => 1,
        PriorityClass::Batch => 2,
    };
    let to_priority = |c: PriorityClass| match c {
        PriorityClass::Interactive => Priority::Interactive,
        PriorityClass::Standard => Priority::Standard,
        PriorityClass::Batch => Priority::Batch,
    };
    let replay_start = Instant::now();
    let mut degrade_tickets: Vec<(PriorityClass, Ticket)> = Vec::with_capacity(degrade_requests);
    let mut local_rejected = [0u64; 3];
    for arrival in &degrade_schedule {
        if let Some(wait) = arrival.at.checked_sub(replay_start.elapsed()) {
            std::thread::sleep(wait);
        }
        let request = Request::new(
            keys[arrival.family],
            (fams[arrival.family].inputs)(arrival.seq),
        );
        let scheduled = arrival.instant(replay_start);
        let mut opts = SubmitOptions::at(scheduled).priority(to_priority(arrival.class));
        if arrival.class == PriorityClass::Interactive {
            // Deadline is relative to the *scheduled* arrival: a replay
            // that falls behind eats into its own budget, as a real
            // open-loop client's would.
            opts = opts.deadline(scheduled + interactive_deadline);
        }
        match submitter.submit_with(request, opts) {
            Ok(t) => degrade_tickets.push((arrival.class, t)),
            Err(SubmitRejection::WouldBlock { retry_after, .. }) => {
                assert!(
                    retry_after > Duration::ZERO && retry_after <= Duration::from_secs(1),
                    "retry_after must be sane, got {retry_after:?}"
                );
                local_rejected[class_index(arrival.class)] += 1; // dropped, no retry
            }
            Err(SubmitRejection::DeadlineAlreadyPast { .. }) => {
                local_rejected[class_index(arrival.class)] += 1;
            }
            Err(other) => panic!("unexpected rejection under overload: {other}"),
        }
    }
    degrade.drain();
    let mut local_completed = [0u64; 3];
    let mut local_shed = [0u64; 3];
    let mut interactive_ms: Vec<f64> = Vec::new();
    for (class, t) in degrade_tickets {
        let (outcome, timeline) = t.wait_detailed();
        match outcome {
            Outcome::Completed(_) => {
                local_completed[class_index(class)] += 1;
                if class == PriorityClass::Interactive {
                    interactive_ms.push(
                        timeline.completed_ns.saturating_sub(timeline.arrival_ns) as f64 * 1e-6,
                    );
                }
            }
            Outcome::Shed { .. } => local_shed[class_index(class)] += 1,
            Outcome::Failed(e) => panic!("no request may fail under overload: {e}"),
        }
    }
    let degrade_report = degrade.shutdown();
    // Cross-check the dispatcher's per-class ledger against the client's
    // own tallies — the report must never hide a shed or a rejection.
    let mut honest = degrade_report.offered() == degrade_requests as u64;
    for (i, p) in [Priority::Interactive, Priority::Standard, Priority::Batch]
        .iter()
        .enumerate()
    {
        let c = degrade_report.class(*p);
        assert_eq!(c.completed, local_completed[i], "{p:?} completed mismatch");
        assert_eq!(c.shed, local_shed[i], "{p:?} shed mismatch");
        assert_eq!(c.rejected, local_rejected[i], "{p:?} rejected mismatch");
        assert_eq!(c.failed, 0, "{p:?} must not fail under clean overload");
        honest &= c.offered == c.completed + c.failed + c.shed + c.rejected;
    }
    interactive_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let interactive_p99_ms = if interactive_ms.is_empty() {
        0.0
    } else {
        interactive_ms[(interactive_ms.len() - 1) * 99 / 100]
    };
    let within_budget = interactive_ms
        .iter()
        .filter(|&&ms| ms <= p99_budget_ms)
        .count();
    // Goodput ratio: of the interactive requests actually served, the
    // fraction inside the latency budget. Shedding keeps this near 1.0
    // under overload (that is the point); the gate ratchets it and
    // separately requires completions > 0 so "shed everything" can't
    // fake a perfect score.
    let interactive_goodput_ratio = within_budget as f64 / (interactive_ms.len().max(1)) as f64;
    assert!(
        interactive_p99_ms <= p99_budget_ms,
        "interactive p99 {interactive_p99_ms:.2} ms blew the {p99_budget_ms} ms budget"
    );
    assert!(honest, "shed/reject accounting must balance exactly");
    let degrade_classes = {
        let mut obj = Json::obj();
        for (p, name) in [
            (Priority::Interactive, "interactive"),
            (Priority::Standard, "standard"),
            (Priority::Batch, "batch"),
        ] {
            let c = degrade_report.class(p);
            obj = obj.field(
                name,
                Json::obj()
                    .field("offered", c.offered)
                    .field("accepted", c.accepted)
                    .field("completed", c.completed)
                    .field("failed", c.failed)
                    .field("shed", c.shed)
                    .field("rejected", c.rejected),
            );
        }
        obj
    };
    let graceful_degradation = Json::obj()
        .field("offered", degrade_requests)
        .field("saturation_rps", SATURATION_RPS)
        .field("offered_rps", degraded_rps)
        .field("shards", 2usize)
        .field("queue_capacity", queue_capacity)
        .field("interactive_deadline_ms", 40.0)
        .field("p99_budget_ms", p99_budget_ms)
        .field("interactive_completed", interactive_ms.len())
        .field("interactive_p99_ms", interactive_p99_ms)
        .field("interactive_goodput_ratio", interactive_goodput_ratio)
        .field("rejected_would_block", degrade_report.rejected_would_block)
        .field(
            "rejected_deadline_past",
            degrade_report.rejected_deadline_past,
        )
        .field("shed_unmeetable", degrade_report.shed_unmeetable)
        .field("shed_expired", degrade_report.shed_expired)
        .field("honest", honest)
        .field("verified", true)
        .field("classes", degrade_classes);

    // Phase 8: chaos recovery (gated). The gated 600-request stream
    // replays open-loop at 2× saturation against four supervised shards
    // while a scripted `ChaosPlan` kills the home shard of the first
    // family after its second round and stalls a neighbour on every
    // round; hedging covers the straggler. Stealing stays off so every
    // rescued round provably moved through the supervised lease/requeue
    // (or hedge) path rather than an opportunistic steal. The invariants
    // checked here and re-checked by `bench_gate`: zero lost tickets,
    // zero failures (three same-class survivors remain), at least one
    // recovered round, every completion byte-identical to the serial
    // reference, and an exactly balanced per-class ledger.
    let chaos_shards: usize = 4;
    let chaos_rps = 2.0 * SATURATION_RPS;
    let kill_after_rounds: u64 = 2;
    let killed_shard = runtime::home_shard(ref_keys[0], chaos_shards);
    let stalled_shard = (killed_shard + 1) % chaos_shards;
    let stall_per_round = Duration::from_millis(3);
    let chaos_schedule = open_loop_schedule(&TrafficParams {
        requests: REQUESTS,
        rate_per_sec: chaos_rps,
        pattern: ArrivalPattern::Poisson,
        families: fams.len(),
        skew: 0.0,
        seed: 67,
        priorities: PriorityMix::new(0.3, 0.3),
    });
    let chaos = dpu.dispatcher(DispatchOptions {
        shards: chaos_shards,
        max_batch: 16,
        max_wait: Duration::from_micros(500),
        work_stealing: false,
        chaos: Some(
            ChaosPlan::new(42)
                .kill_shard(killed_shard, kill_after_rounds)
                .stall_shard(stalled_shard, stall_per_round),
        ),
        hedge: Some(HedgeOptions {
            trigger_percentile: 95,
            min_wait: Duration::from_millis(5),
        }),
        stall_timeout: Some(Duration::from_millis(50)),
        ..Default::default()
    });
    let chaos_keys: Vec<DagKey> = fams.iter().map(|f| chaos.register(f.dag.clone())).collect();
    let chaos_submitter = chaos.submitter();
    let chaos_start = Instant::now();
    let mut chaos_tickets: Vec<Ticket> = Vec::with_capacity(REQUESTS);
    for (i, arrival) in chaos_schedule.iter().enumerate() {
        if let Some(wait) = arrival.at.checked_sub(chaos_start.elapsed()) {
            std::thread::sleep(wait);
        }
        // Request content comes from the *reference* schedule so every
        // completion can be bit-compared against the serial pass; only
        // the replay timing and priority mix follow the chaos schedule.
        let scheduled = arrival.instant(chaos_start);
        let t = chaos_submitter
            .submit_with(
                build_request(&chaos_keys, i),
                SubmitOptions::at(scheduled).priority(to_priority(arrival.class)),
            )
            .expect("chaos phase has no admission bound");
        chaos_tickets.push(t);
    }
    chaos.drain();
    let mut lost_tickets = 0u64;
    for (i, t) in chaos_tickets.into_iter().enumerate() {
        match t.wait_timeout(Duration::from_secs(60)) {
            Ok(Outcome::Completed(res)) => {
                assert_identical(&res, &reference.results[i], &format!("chaos request {i}"));
            }
            Ok(other) => panic!("chaos request {i}: survivors must complete, got {other:?}"),
            Err(_) => lost_tickets += 1,
        }
    }
    assert_eq!(lost_tickets, 0, "chaos recovery must not lose tickets");
    let chaos_report = chaos.shutdown();
    // `served` counts executions, so losing hedge copies can push it past
    // the request count; the *ticket* ledger is the loss-free invariant.
    let chaos_completed: u64 = [Priority::Interactive, Priority::Standard, Priority::Batch]
        .iter()
        .map(|&p| chaos_report.class(p).completed)
        .sum();
    assert_eq!(chaos_completed, REQUESTS as u64, "loss-free recovery");
    assert!(
        chaos_report.served >= REQUESTS as u64,
        "every ticket's winning execution is part of `served`"
    );
    assert!(
        chaos_report.recovered >= 1,
        "the killed shard's rounds must recover via the lease/requeue path"
    );
    assert!(
        chaos_report.hedge_wins <= chaos_report.hedged,
        "a hedge can only win where a hedge was placed"
    );
    let chaos_classes = {
        let mut obj = Json::obj();
        for (p, name) in [
            (Priority::Interactive, "interactive"),
            (Priority::Standard, "standard"),
            (Priority::Batch, "batch"),
        ] {
            let c = chaos_report.class(p);
            assert_eq!(
                c.offered,
                c.completed + c.failed + c.shed + c.rejected,
                "{name} ledger must balance under chaos"
            );
            obj = obj.field(
                name,
                Json::obj()
                    .field("offered", c.offered)
                    .field("accepted", c.accepted)
                    .field("completed", c.completed)
                    .field("failed", c.failed)
                    .field("shed", c.shed)
                    .field("rejected", c.rejected),
            );
        }
        obj
    };
    let chaos_failed: u64 = [Priority::Interactive, Priority::Standard, Priority::Batch]
        .iter()
        .map(|&p| chaos_report.class(p).failed)
        .sum();
    assert_eq!(chaos_failed, 0, "survivors must absorb every failure");
    let chaos_json = Json::obj()
        .field("requests", REQUESTS)
        .field("shards", chaos_shards)
        .field("offered_rps", chaos_rps)
        .field("killed_shard", killed_shard)
        .field("kill_after_rounds", kill_after_rounds)
        .field("stalled_shard", stalled_shard)
        .field("stall_per_round_ms", 3.0)
        .field("hedge_trigger_percentile", 95u64)
        .field("hedge_min_wait_ms", 5.0)
        .field("lost_tickets", lost_tickets)
        .field("completed", chaos_completed)
        .field("served", chaos_report.served)
        .field("recovered", chaos_report.recovered)
        .field("hedged", chaos_report.hedged)
        .field("hedge_wins", chaos_report.hedge_wins)
        .field("failed", chaos_failed)
        .field("classes", chaos_classes)
        .field("verified", true);

    let report = Json::obj()
        .field("bench", "async_serving")
        .field("requests", REQUESTS)
        .field(
            "families",
            Json::Arr(fams.iter().map(|f| f.name.into()).collect()),
        )
        .field("shards", GATED_SHARDS)
        .field("modelled_cores_per_shard", runtime::DPU_V2_L_CORES)
        // Gated, machine-independent fields (see bench_gate).
        .field("simulated_gops", gated_report.gops(freq))
        .field("modelled_cycles", gated_report.modelled_cycles())
        .field("total_dag_ops", gated_report.total_dag_ops())
        .field("cache_hit_rate", gated_cache.hit_rate())
        .field("compiles", gated_cache.misses)
        .field("shard_balance", gated_report.shard_balance())
        .field("verified", true)
        // Live multi-backend comparison (machine-independent, gated).
        .field("baseline_compare", baseline_compare)
        // Closed-loop latency accounting. `deterministic` is the gated
        // half: per-request modelled service time in simulated cycles,
        // a pure function of the stream (merge-invariant across shard
        // counts, asserted above); `bench_gate` ratchets its p50/p99.
        // `open_loop` carries the host-time response-time quantiles of
        // each replay pattern (machine-dependent, recorded only).
        .field(
            "latency",
            Json::obj()
                .field(
                    "deterministic",
                    latency_row(&gated_report.latency.service_cycles, 1.0)
                        .field("unit", "modelled_cycles")
                        // Host-time observability rider (machine-
                        // dependent, like host_seconds — NOT gated).
                        .field(
                            "host_mean_queueing_delay_us",
                            gated_report.latency.queueing_ns.mean() * 1e-3,
                        )
                        .field("merge_invariant", merge_invariant)
                        .field("verified", true),
                )
                .field("open_loop", open_latency_json),
        )
        // Cache persistence: warm-restart + peer pre-warm over a spill
        // dir (machine-independent; warm_restart_hit_rate is gated).
        .field(
            "cache_persist",
            Json::obj()
                .field("requests", REQUESTS)
                .field("families", fams.len())
                .field("cold_compiles", cold_stats.misses)
                .field("spill_writes", cold_stats.spill_writes)
                .field("spill_rejects", warm_stats.spill_rejects)
                .field("warm_restart_hit_rate", warm_stats.hit_rate())
                .field("warm_restart_compiles", warm_stats.misses)
                .field("warm_spill_loads", warm_stats.spill_hits)
                .field("prewarm_loaded", prewarm_loaded)
                .field("verified", true),
        )
        // Graceful degradation under 2× saturation load: per-class
        // accounting (offered == completed + shed + rejected, exactly),
        // interactive p99 vs its budget, and the goodput ratio
        // `bench_gate` ratchets. Counts are load-timing dependent, but
        // the honesty equation and the budget hold on any machine.
        .field("graceful_degradation", graceful_degradation)
        // Chaos recovery: loss-free failure injection. Counts such as
        // hedged/hedge_wins are timing dependent, but the invariants
        // (lost_tickets == 0, failed == 0, recovered ≥ 1, balanced
        // ledger, byte-identical outputs) hold on any machine.
        .field("chaos", chaos_json)
        // Host-side observability (machine-dependent, not gated).
        .field("host_seconds", gated_host_seconds)
        .field("host_rps", REQUESTS as f64 / gated_host_seconds.max(1e-9))
        .field("gated_shards", shard_arr(&gated_report))
        .field("open_loop", open_loop_json)
        .field(
            "machine_scratch",
            Json::obj()
                .field("runs", scratch_inputs.len())
                .field("fresh_machine_seconds", fresh_seconds)
                .field("reused_machine_seconds", reused_seconds)
                .field("reuse_speedup", fresh_seconds / reused_seconds.max(1e-9)),
        )
        // Decoded execution: the single-machine speedup is a same-machine
        // timing ratio (gated with a hard ≥2x floor plus a ratchet); the
        // grouping ratio is a pure function of the stream and the decode
        // count a pure function of the family set (both bit-stable).
        // `repeat_program_rps` is host wall-clock, recorded only.
        .field(
            "decoded_exec",
            Json::obj()
                .field("runs", scratch_inputs.len())
                .field("interpreted_seconds", reused_seconds)
                .field("decoded_seconds", decoded_seconds)
                .field("single_machine_speedup", single_machine_speedup)
                .field("round_requests", REQUESTS)
                .field("round_max_batch", round_batch)
                .field("rounds", verified_rounds)
                .field("round_grouping_ratio", round_grouping_ratio)
                .field(
                    "repeat_program_rps",
                    REQUESTS as f64 / round_seconds.max(1e-9),
                )
                .field("decode_count", decode_count)
                .field("verified", true),
        );
    emit(&report, json_path.as_deref());
}
