//! CI gate: runs the static verifier (`dpu-verify`) over every program
//! the workload suite compiles across the standard `ArchConfig` grid and
//! exits non-zero on any rejection — i.e. on any **false positive** of
//! the analyzer, since every compiler-emitted program is well-formed by
//! construction (the simulator would otherwise fault on it).
//!
//! Three properties are checked per `(workload, config)` point:
//!
//! 1. `Compiled::verify()` accepts the program (zero false positives);
//! 2. the replayed cycle count equals the finalizer's declared
//!    `total_cycles` (the verifier is an exact static mirror of the
//!    simulator's timing);
//! 3. the derived [`ConfigFacts`](dpu_core::verify::ConfigFacts) admit
//!    the very configuration the program was compiled for (the
//!    steal-class fingerprint is never self-contradictory).
//!
//! Workloads: the full `pc` + `sptrsv` suites (scaled down for CI time)
//! plus the tiny suite at full size — `sparse` workloads are the
//! `sptrsv` family (sparse triangular solves). Configs: the paper's
//! min-EDP and large design points, smaller/edge points, and every
//! interconnect topology at one point.

use dpu_core::verify;
use dpu_core::workloads::suite;
use dpu_core::{compiler::CompileOptions, isa::ArchConfig, isa::Topology};

fn config_grid() -> Vec<ArchConfig> {
    let mut grid = vec![
        ArchConfig::min_edp(),
        ArchConfig::large(),
        ArchConfig::new(1, 4, 8).unwrap(),
        ArchConfig::new(2, 8, 16).unwrap(),
        ArchConfig::new(3, 16, 32).unwrap(),
    ];
    // Topology (d) is not a compiler target: its one-to-one input side
    // forbids the cross-bank routings the bank allocator assumes (no code
    // in the repo compiles for it), so the sweep covers the three
    // crossbar-input topologies.
    for t in [
        Topology::CrossbarBoth,
        Topology::CrossbarInPerLayerOut,
        Topology::CrossbarInOnePeOut,
    ] {
        grid.push(ArchConfig::with_topology(2, 8, 16, t).unwrap());
    }
    grid
}

fn main() {
    let mut specs: Vec<(String, dpu_core::dag::Dag)> = Vec::new();
    for spec in suite::small_suite() {
        specs.push((spec.name.to_string(), spec.generate_scaled(0.25)));
    }
    for spec in suite::tiny_suite() {
        specs.push((spec.name.to_string(), spec.generate()));
    }

    let grid = config_grid();
    let opts = CompileOptions {
        verify: false, // call the verifier explicitly below
        ..Default::default()
    };
    let (mut programs, mut failures) = (0u64, 0u64);
    for (name, dag) in &specs {
        for cfg in &grid {
            let compiled = match dpu_core::compiler::compile(dag, cfg, &opts) {
                Ok(c) => c,
                Err(e) => {
                    // Infeasible register pressure at an edge point is a
                    // compiler refusal, not a verifier false positive.
                    println!("  skip  {name} @ {cfg:?}: {e}");
                    continue;
                }
            };
            programs += 1;
            match compiled.verify() {
                Ok(report) => {
                    if report.cycles != compiled.stats.total_cycles {
                        failures += 1;
                        println!(
                            "  FAIL  {name} @ D={} B={} R={} {}: replay {} cycles, declared {}",
                            cfg.depth,
                            cfg.banks,
                            cfg.regs_per_bank,
                            cfg.topology,
                            report.cycles,
                            compiled.stats.total_cycles
                        );
                    } else if !report.facts.admits(cfg) {
                        failures += 1;
                        println!(
                            "  FAIL  {name} @ D={} B={} R={} {}: facts {:?} reject own config",
                            cfg.depth, cfg.banks, cfg.regs_per_bank, cfg.topology, report.facts
                        );
                    }
                }
                Err(e) => {
                    failures += 1;
                    println!(
                        "  FAIL  {name} @ D={} B={} R={} {}: false positive: {e}",
                        cfg.depth, cfg.banks, cfg.regs_per_bank, cfg.topology
                    );
                }
            }
        }
    }

    // The compatibility relation must be coherent with the facts: a config
    // differing only in data memory is steal-compatible, all others not.
    let a = ArchConfig::min_edp();
    let mut b = a;
    b.data_mem_rows *= 2;
    assert!(verify::steal_compatible(&a, &b));
    assert!(!verify::steal_compatible(&a, &ArchConfig::large()));

    println!("verify_all: {programs} programs verified, {failures} failures");
    if failures > 0 {
        std::process::exit(1);
    }
}
