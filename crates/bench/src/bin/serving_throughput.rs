//! Serving-throughput benchmark of the `dpu-runtime` engine (the
//! production-serving counterpart of the paper's §V-C2 batch mode).
//!
//! Serves ≥ 1000 requests drawn from three workload families — sparse
//! (SpMV), SpTRSV, and probabilistic circuits — across ≥ 4 worker
//! threads on the DPU-v2 (L) configuration, verifies the aggregate
//! outputs are byte-identical to a serial reference pass, and emits one
//! JSON perf line with cache hit rate, simulated GOPS, and host
//! wall-clock.
//!
//! Run with `cargo run --release -p dpu-bench --bin serving_throughput --
//! [--json <path>]` — the `--json` flag additionally writes the perf line
//! to a file for CI artifacts (shared across the serving benches, see
//! `dpu_bench::report`).

use dpu_bench::report::{emit, json_path_flag, Json};
use dpu_core::prelude::*;
use dpu_core::workloads::pc::{generate_pc, pc_inputs, PcParams};
use dpu_core::workloads::sparse::{generate_lower_triangular, LowerTriangularParams, SpmvDag};
use dpu_core::workloads::sptrsv::SptrsvDag;
use dpu_core::{energy, runtime};

const REQUESTS: usize = 1200;
const WORKERS: usize = 4;

struct Family {
    name: &'static str,
    dag: Dag,
    /// Fresh inputs per request index.
    inputs: Box<dyn Fn(usize) -> Vec<f32>>,
}

fn families() -> Vec<Family> {
    let mut out = Vec::new();
    // Family 1: probabilistic circuits (two sizes).
    for (nodes, depth, seed) in [(1_500usize, 12usize, 21u64), (2_500, 16, 22)] {
        let dag = generate_pc(&PcParams::with_targets(nodes, depth), seed);
        let d = dag.clone();
        out.push(Family {
            name: "pc",
            dag,
            inputs: Box::new(move |i| pc_inputs(&d, i as u64)),
        });
    }
    // Family 2: SpTRSV forward substitution (two matrices).
    for (dim, path, seed) in [(100usize, 18usize, 23u64), (160, 24, 24)] {
        let l = generate_lower_triangular(
            &LowerTriangularParams::for_target_path(dim, 2.0, path),
            seed,
        );
        let trsv = SptrsvDag::build(&l);
        let dag = trsv.dag.clone();
        out.push(Family {
            name: "sptrsv",
            dag,
            inputs: Box::new(move |i| {
                let b: Vec<f32> = (0..l.dim)
                    .map(|j| 1.0 + 0.5 * (((i + j) as f32) * 0.37).sin())
                    .collect();
                trsv.inputs(&l, &b)
            }),
        });
    }
    // Family 3: sparse matrix-vector products (two matrices).
    for (dim, seed) in [(120usize, 25u64), (200, 26)] {
        let a = generate_lower_triangular(
            &LowerTriangularParams {
                dim,
                avg_nnz_per_row: 4.0,
                band_fraction: 0.7,
                band: 10,
            },
            seed,
        );
        let spmv = SpmvDag::build(&a);
        let dag = spmv.dag.clone();
        out.push(Family {
            name: "sparse",
            dag,
            inputs: Box::new(move |i| {
                let x: Vec<f32> = (0..a.dim)
                    .map(|j| 0.5 + 0.3 * (((2 * i + j) as f32) * 0.23).cos())
                    .collect();
                spmv.inputs(&a, &x)
            }),
        });
    }
    out
}

fn build_stream(engine: &Engine, fams: &[Family]) -> Vec<Request> {
    let keys: Vec<DagKey> = fams
        .iter()
        .map(|f| engine.register(f.dag.clone()))
        .collect();
    (0..REQUESTS)
        .map(|i| {
            let which = i % fams.len();
            Request::new(keys[which], (fams[which].inputs)(i))
        })
        .collect()
}

fn main() {
    let dpu = Dpu::large();
    let opts = EngineOptions {
        workers: WORKERS,
        cores: runtime::DPU_V2_L_CORES,
        cache_capacity: None,
        spill_dir: None,
    };
    let fams = families();
    let family_names: Vec<&str> = {
        let mut n: Vec<&str> = fams.iter().map(|f| f.name).collect();
        n.dedup();
        n
    };

    // Threaded serving pass.
    let engine = dpu.engine(opts.clone());
    let stream = build_stream(&engine, &fams);
    let report = engine.serve(&stream);
    assert!(report.failures.is_empty(), "serving succeeds");

    // Serial reference pass on a fresh engine; aggregate outputs must be
    // byte-identical.
    let ref_engine = dpu.engine(opts);
    let ref_stream = build_stream(&ref_engine, &fams);
    assert_eq!(stream, ref_stream, "request streams must be identical");
    let reference = ref_engine
        .serve_serial(&ref_stream)
        .expect("serial reference succeeds");
    let mut verified = report.results.len() == reference.results.len();
    for (got, want) in report.results.iter().zip(reference.results.iter()) {
        let got_bits: Vec<u32> = got.outputs.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u32> = want.outputs.iter().map(|v| v.to_bits()).collect();
        verified &= got_bits == want_bits && got.cycles == want.cycles;
    }
    assert!(verified, "threaded outputs differ from serial reference");
    assert!(
        report.cache.hit_rate() > 0.9,
        "cache hit rate {:.3} not > 0.9",
        report.cache.hit_rate()
    );

    let freq = energy::calib::FREQ_HZ;
    // One machine-readable perf line (built through `dpu_bench::report`:
    // the vendored serde stub has no serializer).
    let line = Json::obj()
        .field("bench", "serving_throughput")
        .field("requests", report.results.len())
        .field("workers", report.workers)
        .field(
            "host_cpus",
            std::thread::available_parallelism().map_or(0, |n| n.get()),
        )
        .field(
            "families",
            Json::Arr(family_names.iter().map(|&n| n.into()).collect()),
        )
        .field("distinct_dags", fams.len())
        .field("cache_hit_rate", report.cache.hit_rate())
        .field("compiles", report.cache.misses)
        .field("batch_rounds", report.plan.rounds.len())
        .field("modelled_cores", report.plan.cores)
        .field("batch_cycles", report.plan.total_cycles)
        .field("simulated_gops", report.gops(freq))
        .field(
            "core_utilization",
            report
                .plan
                .core_utilization(&report.results.iter().map(|r| r.cycles).collect::<Vec<_>>()),
        )
        .field("host_seconds", report.host_seconds)
        .field("host_rps", report.host_requests_per_sec())
        .field("serial_host_seconds", reference.host_seconds)
        .field(
            "speedup",
            reference.host_seconds / report.host_seconds.max(1e-9),
        )
        .field("verified", verified);
    emit(&line, json_path_flag().as_deref());
}
