//! Table III: both halves of the platform comparison.
fn main() {
    print!(
        "{}",
        dpu_bench::experiments::table3_small(dpu_bench::env_scale(1.0))
    );
    println!();
    print!(
        "{}",
        dpu_bench::experiments::table3_large(dpu_bench::env_scale(0.125))
    );
}
