//! Runs every experiment in DESIGN.md §3 and prints the full report
//! (the source of EXPERIMENTS.md's measured numbers).
fn main() {
    print!("{}", dpu_bench::experiments::all_experiments());
}
