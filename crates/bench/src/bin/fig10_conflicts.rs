//! Regenerates one evaluation artifact; see DESIGN.md §3.
fn main() {
    print!("{}", dpu_bench::experiments::fig10_conflicts());
}
