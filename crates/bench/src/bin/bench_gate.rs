//! CI bench-regression gate: compares a freshly produced
//! `BENCH_serving.json` against the committed `bench/baseline.json` and
//! exits non-zero on a regression beyond the tolerance.
//!
//! Only **machine-independent** fields are gated — the `async_serving`
//! benchmark's gated phase is deterministic (fixed schedule, fixed
//! routing, no stealing, no timer closes), so `simulated_gops`, the
//! cache miss rate, and the multi-backend `baseline_compare` section are
//! bit-stable on every machine; a drop can only mean a real change in
//! compiler output, simulator timing, dispatch packing, or the analytic
//! platform models. Host wall-clock fields vary by machine and are
//! deliberately ignored.
//!
//! Gating rules:
//!
//! - `simulated_gops` and each `baseline_compare` platform's
//!   `throughput_gops`: fail on a relative drop beyond the tolerance; a
//!   non-zero baseline collapsing to zero always fails.
//! - Cache health is gated on the **miss rate** (`1 − cache_hit_rate`),
//!   not the hit rate: hit rates sit so close to 1.0 that a relative
//!   tolerance on them is meaningless — 0.995 → 0.90 is a 20× miss
//!   increase yet under a 10% hit-rate change. A perfect baseline
//!   (zero misses) fails on *any* current miss.
//! - The persistence phase's `cache_persist.warm_restart_hit_rate` is
//!   gated the same way: the committed baseline is a perfect 1.0 (a
//!   restarted engine recompiles nothing), so any compile on a warm
//!   restart fails the gate.
//! - The `latency.deterministic` section (per-request modelled service
//!   time in simulated cycles — deterministic, merge-invariant across
//!   shard counts) is gated **lower-is-better** on `p50` and `p99`: fail
//!   on a relative increase beyond the tolerance, and fail outright when
//!   a non-zero baseline tail collapses to zero — a p99 of zero does not
//!   mean the system got infinitely fast, it means the accounting broke
//!   (the same hardening the cache miss-rate gate applies to hit rates).
//!   Host-time latency (the open-loop section) varies by machine and is
//!   recorded, not gated.
//! - The decoded-execution phase (`decoded_exec`) is gated two ways:
//!   `single_machine_speedup` — interpreted vs decoded seconds on the
//!   same machine, a timing *ratio* so it survives machine changes —
//!   must clear a hard 2.0× floor (the decoded pipeline's reason to
//!   exist) and additionally ratchets at a widened tolerance;
//!   `round_grouping_ratio` (jobs per program group per round) is a pure
//!   function of the stream and ratchets at the normal tolerance.
//! - The overload phase (`graceful_degradation`, 2× saturation with a
//!   priority mix) is gated on **honesty and goodput**, not raw counts:
//!   the admission ledger must balance exactly (per class and in total,
//!   `offered == completed + failed + shed + rejected` — recomputed
//!   here, not trusted from the bench's own `honest` flag), interactive
//!   p99 must stay inside the phase's declared latency budget, at least
//!   one interactive request must actually complete (so "shed
//!   everything" can't fake a pass), and `interactive_goodput_ratio` —
//!   of the interactive requests served, the fraction inside the budget
//!   — ratchets higher-is-better. Raw shed/reject counts are host-load
//!   dependent and are recorded, never gated.
//! - The chaos phase (`chaos`, scripted kill + stall + hedging at 2×
//!   saturation) is gated on **loss-freedom**: `lost_tickets` and
//!   `failed` must be exactly zero, `recovered` must be at least one
//!   (the dead shard's rounds provably moved through the lease/requeue
//!   path), `hedge_wins ≤ hedged` (a hedge can only win where one was
//!   placed), `completed` must equal the offered request count, and the
//!   per-class ledger must balance exactly — recomputed here. Hedge
//!   counts themselves are timing dependent and are recorded, never
//!   ratcheted (`served` counts executions, so losing hedge copies may
//!   push it past the request count by design).
//!
//! Usage:
//! `cargo run --release -p dpu-bench --bin bench_gate -- \
//!    [--current BENCH_serving.json] [--baseline bench/baseline.json] \
//!    [--tolerance-pct 10]`
//!
//! When a gated metric *improves* past the tolerance the gate passes but
//! prints a reminder to refresh the baseline, so the ratchet moves up.

use std::process::ExitCode;

use dpu_bench::report::Json;

struct Args {
    current: String,
    baseline: String,
    tolerance_pct: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        current: "BENCH_serving.json".into(),
        baseline: "bench/baseline.json".into(),
        tolerance_pct: 10.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = || it.next().unwrap_or_else(|| panic!("{arg} needs a value"));
        match arg.as_str() {
            "--current" => args.current = take(),
            "--baseline" => args.baseline = take(),
            "--tolerance-pct" => args.tolerance_pct = take().parse().expect("numeric tolerance"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn num(doc: &Json, key: &str, path: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: missing numeric field `{key}`"))
}

/// Recomputes a section's per-class admission ledger and errors on any
/// imbalance: every offered request must be accounted for as completed,
/// failed, shed, or rejected — exactly, per class. Returns the summed
/// `(offered, settled)` totals for the caller's aggregate check.
fn class_ledger(section: &Json, name: &str, path: &str) -> Result<(f64, f64), String> {
    let classes = section
        .get("classes")
        .ok_or_else(|| format!("{path}: {name}.classes missing"))?;
    let Json::Obj(class_entries) = classes else {
        return Err(format!("{path}: {name}.classes is not an object"));
    };
    let (mut offered_sum, mut settled_sum) = (0.0, 0.0);
    for (class, entry) in class_entries {
        let field = |key: &str| {
            entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: {name}.classes.{class}.{key} missing"))
        };
        let offered = field("offered")?;
        let settled = field("completed")? + field("failed")? + field("shed")? + field("rejected")?;
        if offered != settled {
            return Err(format!(
                "{path}: {name} ledger imbalance for class `{class}`: offered {offered} \
                 != completed + failed + shed + rejected {settled}"
            ));
        }
        offered_sum += offered;
        settled_sum += settled;
    }
    Ok((offered_sum, settled_sum))
}

/// One ratchet check; `higher_better` picks the regression direction
/// (throughput metrics ratchet up, latency quantiles ratchet down).
/// Returns `true` on failure.
fn gate_metric(key: &str, current: f64, baseline: f64, tol: f64, higher_better: bool) -> bool {
    let (failed, verdict): (bool, String) = if baseline == 0.0 {
        // Nothing to regress from; a non-zero current is a new signal.
        (
            false,
            if current > 0.0 {
                "pass (new signal — consider refreshing bench/baseline.json)".into()
            } else {
                "pass (both zero)".into()
            },
        )
    } else if current == 0.0 {
        // A non-zero → zero collapse always fails, in either direction:
        // a throughput of zero means the metric vanished, and a latency
        // of exactly zero means the accounting vanished — not that
        // serving became instantaneous.
        (true, "FAIL (collapsed to zero)".into())
    } else {
        let change = (current - baseline) / baseline;
        let regression = if higher_better { -change } else { change };
        let v: &str = if regression > tol {
            "FAIL"
        } else if regression < -tol {
            "pass (improved — consider refreshing bench/baseline.json)"
        } else {
            "pass"
        };
        (v == "FAIL", format!("({:+.1}%) … {v}", change * 100.0))
    };
    println!("bench-gate: {key}: current {current:.4} vs baseline {baseline:.4} {verdict}");
    failed
}

/// One higher-is-better ratchet check. Returns `true` on failure.
fn gate_higher_better(key: &str, current: f64, baseline: f64, tol: f64) -> bool {
    gate_metric(key, current, baseline, tol, true)
}

/// One lower-is-better ratchet check (latency quantiles). Returns `true`
/// on failure.
fn gate_lower_better(key: &str, current: f64, baseline: f64, tol: f64) -> bool {
    gate_metric(key, current, baseline, tol, false)
}

/// A cache-health check, on miss rate (lower is better). Returns `true`
/// on failure. `key` names the metric in the output (the in-memory cache
/// and the warm-restart persistence phase are both gated this way).
fn gate_miss_rate(key: &str, current_hit: f64, baseline_hit: f64, tol: f64) -> bool {
    let (mc, mb) = (1.0 - current_hit, 1.0 - baseline_hit);
    let (failed, verdict) = if mb <= 0.0 {
        // The baseline cache was perfect; any miss is a collapse from
        // perfect, not a tolerable drift (the relative form would have
        // divided by zero and auto-passed).
        if mc > 0.0 {
            (true, "FAIL (perfect baseline now misses)".to_string())
        } else {
            (false, "pass (still perfect)".to_string())
        }
    } else {
        let change = (mc - mb) / mb;
        let v = if change > tol {
            "FAIL"
        } else if change < -tol {
            "pass (improved — consider refreshing bench/baseline.json)"
        } else {
            "pass"
        };
        (v == "FAIL", format!("({:+.1}%) … {v}", change * 100.0))
    };
    println!(
        "bench-gate: {key}: current {mc:.4} vs baseline {mb:.4} \
         (hit {current_hit:.4} vs {baseline_hit:.4}) {verdict}"
    );
    failed
}

fn run() -> Result<(), String> {
    let args = parse_args();
    let current = load(&args.current)?;
    let baseline = load(&args.baseline)?;
    let tol = args.tolerance_pct / 100.0;

    // The bench itself must have verified its outputs against serial.
    if current.get("verified").and_then(Json::as_bool) != Some(true) {
        return Err(format!("{}: `verified` is not true", args.current));
    }
    // Same experiment shape, otherwise the comparison is meaningless.
    for key in ["requests", "shards"] {
        let (c, b) = (
            num(&current, key, &args.current)?,
            num(&baseline, key, &args.baseline)?,
        );
        if c != b {
            return Err(format!(
                "experiment shape changed: `{key}` is {c} but baseline has {b} \
                 — refresh bench/baseline.json in the same commit"
            ));
        }
    }

    let mut failed = false;

    // The throughput ratchet.
    failed |= gate_higher_better(
        "simulated_gops",
        num(&current, "simulated_gops", &args.current)?,
        num(&baseline, "simulated_gops", &args.baseline)?,
        tol,
    );

    // Cache health, gated on miss rate (see module docs).
    failed |= gate_miss_rate(
        "cache_miss_rate",
        num(&current, "cache_hit_rate", &args.current)?,
        num(&baseline, "cache_hit_rate", &args.baseline)?,
        tol,
    );

    // Cache persistence: the warm-restart phase is deterministic, so its
    // hit rate is gated exactly like the in-memory cache — and since the
    // committed baseline is perfect (1.0), *any* compile on a warm
    // restart fails the gate.
    if let Some(base_persist) = baseline.get("cache_persist") {
        let cur_persist = current.get("cache_persist").ok_or_else(|| {
            format!(
                "{}: cache_persist section missing (baseline has it)",
                args.current
            )
        })?;
        if cur_persist.get("verified").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "{}: cache_persist.verified is not true",
                args.current
            ));
        }
        failed |= gate_miss_rate(
            "cache_persist.warm_restart_miss_rate",
            num(cur_persist, "warm_restart_hit_rate", &args.current)?,
            num(base_persist, "warm_restart_hit_rate", &args.baseline)?,
            tol,
        );
    }

    // Tail latency: the deterministic phase's modelled service-time
    // quantiles are machine-independent, so p50/p99 ratchet exactly like
    // throughput — just lower-is-better, with the zero-collapse guard.
    if let Some(base_lat) = baseline.get("latency").and_then(|l| l.get("deterministic")) {
        let cur_lat = current
            .get("latency")
            .and_then(|l| l.get("deterministic"))
            .ok_or_else(|| {
                format!(
                    "{}: latency.deterministic section missing (baseline has it)",
                    args.current
                )
            })?;
        if cur_lat.get("verified").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "{}: latency.deterministic.verified is not true",
                args.current
            ));
        }
        if cur_lat.get("merge_invariant").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "{}: latency.deterministic.merge_invariant is not true — merged \
                 per-shard histograms diverged across shard counts",
                args.current
            ));
        }
        for q in ["p50", "p99"] {
            failed |= gate_lower_better(
                &format!("latency.deterministic.{q}"),
                num(cur_lat, q, &args.current)?,
                num(base_lat, q, &args.baseline)?,
                tol,
            );
        }
    }

    // Multi-backend comparison: every platform the baseline knows must
    // still be reported, with its deterministic throughput intact.
    if let Some(base_cmp) = baseline.get("baseline_compare") {
        let platforms = base_cmp
            .get("platforms")
            .ok_or_else(|| format!("{}: baseline_compare.platforms missing", args.baseline))?;
        let Json::Obj(entries) = platforms else {
            return Err(format!(
                "{}: baseline_compare.platforms is not an object",
                args.baseline
            ));
        };
        let cur_platforms = current
            .get("baseline_compare")
            .and_then(|c| c.get("platforms"))
            .ok_or_else(|| {
                format!(
                    "{}: baseline_compare.platforms missing (baseline has it)",
                    args.current
                )
            })?;
        if current
            .get("baseline_compare")
            .and_then(|c| c.get("verified"))
            .and_then(Json::as_bool)
            != Some(true)
        {
            return Err(format!(
                "{}: baseline_compare.verified is not true",
                args.current
            ));
        }
        for (name, bval) in entries {
            let b = bval
                .get("throughput_gops")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{}: {name}: missing throughput_gops", args.baseline))?;
            let c = cur_platforms
                .get(name)
                .and_then(|v| v.get("throughput_gops"))
                .and_then(Json::as_f64)
                .ok_or_else(|| {
                    format!("{}: baseline_compare lost platform `{name}`", args.current)
                })?;
            failed |= gate_higher_better(&format!("baseline_compare.{name}.gops"), c, b, tol);
        }
    }

    // Decoded execution: the pre-decoded pipeline must keep paying for
    // itself. `single_machine_speedup` is a same-machine timing *ratio*
    // (interpreted seconds / decoded seconds) — noisier than the
    // deterministic counters, so it ratchets at a widened tolerance, and
    // independently of the baseline must clear a hard 2.0x floor: the
    // decoded path's reason to exist is that repeat-program execution is
    // at least twice as fast as interpreting. `round_grouping_ratio`
    // (jobs per program group per round) is a pure function of the
    // stream and ratchets at the normal tolerance; a collapse to 1.0
    // would mean round grouping silently stopped sharing decoded forms.
    if let Some(base_dec) = baseline.get("decoded_exec") {
        let cur_dec = current.get("decoded_exec").ok_or_else(|| {
            format!(
                "{}: decoded_exec section missing (baseline has it)",
                args.current
            )
        })?;
        if cur_dec.get("verified").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "{}: decoded_exec.verified is not true",
                args.current
            ));
        }
        let speedup = num(cur_dec, "single_machine_speedup", &args.current)?;
        const SPEEDUP_FLOOR: f64 = 2.0;
        if speedup < SPEEDUP_FLOOR {
            println!(
                "bench-gate: decoded_exec.single_machine_speedup: current {speedup:.4} \
                 vs floor {SPEEDUP_FLOOR:.1} FAIL (below the decoded-pipeline floor)"
            );
            failed = true;
        } else {
            println!(
                "bench-gate: decoded_exec.single_machine_speedup: current {speedup:.4} \
                 vs floor {SPEEDUP_FLOOR:.1} pass"
            );
        }
        failed |= gate_higher_better(
            "decoded_exec.single_machine_speedup",
            speedup,
            num(base_dec, "single_machine_speedup", &args.baseline)?,
            tol.max(0.25),
        );
        failed |= gate_higher_better(
            "decoded_exec.round_grouping_ratio",
            num(cur_dec, "round_grouping_ratio", &args.current)?,
            num(base_dec, "round_grouping_ratio", &args.baseline)?,
            tol,
        );
    }

    // Overload behavior: the graceful-degradation phase is gated on
    // honesty (the admission ledger must balance exactly — recomputed
    // here from the per-class counts, not taken on faith), on the
    // interactive tail staying inside the phase's declared budget, and on
    // the goodput ratio ratcheting up. Raw shed/reject counts vary with
    // host load and are recorded, never gated.
    if let Some(base_deg) = baseline.get("graceful_degradation") {
        let cur_deg = current.get("graceful_degradation").ok_or_else(|| {
            format!(
                "{}: graceful_degradation section missing (baseline has it)",
                args.current
            )
        })?;
        for flag in ["verified", "honest"] {
            if cur_deg.get(flag).and_then(Json::as_bool) != Some(true) {
                return Err(format!(
                    "{}: graceful_degradation.{flag} is not true",
                    args.current
                ));
            }
        }
        // Recompute the honesty equation from the per-class ledger: every
        // offered request must be accounted for as completed, failed,
        // shed, or rejected — exactly, per class and in aggregate. A
        // bench that loses track of work must not pass by setting its own
        // flag.
        let (offered_sum, settled_sum) =
            class_ledger(cur_deg, "graceful_degradation", &args.current)?;
        let offered_total = num(cur_deg, "offered", &args.current)?;
        if offered_sum != offered_total || settled_sum != offered_total {
            return Err(format!(
                "{}: graceful_degradation ledger imbalance in aggregate: \
                 offered {offered_total}, class offered sum {offered_sum}, \
                 class settled sum {settled_sum}",
                args.current
            ));
        }
        // The interactive tail must stay inside the budget the phase
        // itself declared, and shedding everything must not count as a
        // pass — goodput is only meaningful over actual completions.
        let p99 = num(cur_deg, "interactive_p99_ms", &args.current)?;
        let budget = num(cur_deg, "p99_budget_ms", &args.current)?;
        if p99 > budget {
            println!(
                "bench-gate: graceful_degradation.interactive_p99_ms: \
                 current {p99:.4} vs budget {budget:.4} FAIL (over budget)"
            );
            failed = true;
        } else {
            println!(
                "bench-gate: graceful_degradation.interactive_p99_ms: \
                 current {p99:.4} vs budget {budget:.4} pass"
            );
        }
        if num(cur_deg, "interactive_completed", &args.current)? < 1.0 {
            println!(
                "bench-gate: graceful_degradation.interactive_completed: \
                 0 FAIL (no interactive request completed — shedding \
                 everything is not graceful degradation)"
            );
            failed = true;
        }
        failed |= gate_higher_better(
            "graceful_degradation.interactive_goodput_ratio",
            num(cur_deg, "interactive_goodput_ratio", &args.current)?,
            num(base_deg, "interactive_goodput_ratio", &args.baseline)?,
            tol,
        );
    }

    // Chaos recovery: loss-freedom is absolute, not a ratchet. A single
    // lost ticket, a single failure with survivors available, a recovery
    // count of zero (the kill never exercised the lease/requeue path), a
    // hedge win without a hedge, or an unbalanced ledger all hard-fail
    // regardless of tolerance. Hedge counts vary with timing and are
    // recorded, never ratcheted.
    if baseline.get("chaos").is_some() {
        let cur_chaos = current
            .get("chaos")
            .ok_or_else(|| format!("{}: chaos section missing (baseline has it)", args.current))?;
        if cur_chaos.get("verified").and_then(Json::as_bool) != Some(true) {
            return Err(format!("{}: chaos.verified is not true", args.current));
        }
        let lost = num(cur_chaos, "lost_tickets", &args.current)?;
        if lost != 0.0 {
            return Err(format!(
                "{}: chaos.lost_tickets is {lost} — recovery must be loss-free",
                args.current
            ));
        }
        println!("bench-gate: chaos.lost_tickets: 0 pass");
        let chaos_failed = num(cur_chaos, "failed", &args.current)?;
        if chaos_failed != 0.0 {
            return Err(format!(
                "{}: chaos.failed is {chaos_failed} — surviving shards must absorb \
                 every round of a dead peer",
                args.current
            ));
        }
        println!("bench-gate: chaos.failed: 0 pass");
        let recovered = num(cur_chaos, "recovered", &args.current)?;
        if recovered < 1.0 {
            return Err(format!(
                "{}: chaos.recovered is {recovered} — the scripted kill never \
                 exercised the lease/requeue recovery path",
                args.current
            ));
        }
        println!("bench-gate: chaos.recovered: {recovered} pass (>= 1)");
        let hedged = num(cur_chaos, "hedged", &args.current)?;
        let hedge_wins = num(cur_chaos, "hedge_wins", &args.current)?;
        if hedge_wins > hedged {
            return Err(format!(
                "{}: chaos.hedge_wins {hedge_wins} exceeds chaos.hedged {hedged}",
                args.current
            ));
        }
        println!("bench-gate: chaos.hedge_wins: {hedge_wins} of {hedged} hedged pass");
        let (offered_sum, settled_sum) = class_ledger(cur_chaos, "chaos", &args.current)?;
        let requests = num(cur_chaos, "requests", &args.current)?;
        let completed = num(cur_chaos, "completed", &args.current)?;
        // `served` counts executions (losing hedge copies included) and
        // may exceed the request count; the ticket ledger may not.
        if offered_sum != requests || settled_sum != requests || completed != requests {
            return Err(format!(
                "{}: chaos ledger imbalance in aggregate: requests {requests}, \
                 completed {completed}, class offered sum {offered_sum}, class \
                 settled sum {settled_sum}",
                args.current
            ));
        }
        println!("bench-gate: chaos ledger: offered == completed == {requests} pass");
    }

    if failed {
        return Err(format!(
            "gated metric regressed more than {:.0}% — investigate, or update \
             bench/baseline.json if the regression is intended",
            args.tolerance_pct
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("bench-gate: OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("bench-gate: {msg}");
            ExitCode::FAILURE
        }
    }
}
