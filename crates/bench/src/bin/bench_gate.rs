//! CI bench-regression gate: compares a freshly produced
//! `BENCH_serving.json` against the committed `bench/baseline.json` and
//! exits non-zero on a throughput regression beyond the tolerance.
//!
//! Only **machine-independent** fields are gated — the `async_serving`
//! benchmark's gated phase is deterministic (fixed schedule, fixed
//! routing, no stealing, no timer closes), so `simulated_gops` is
//! bit-stable on every machine and a >10% drop can only mean a real
//! change in compiler output, simulator timing, or dispatch packing.
//! Host wall-clock fields vary by machine and are deliberately ignored.
//!
//! Usage:
//! `cargo run --release -p dpu-bench --bin bench_gate -- \
//!    [--current BENCH_serving.json] [--baseline bench/baseline.json] \
//!    [--tolerance-pct 10]`
//!
//! When throughput *improves* past the tolerance the gate passes but
//! prints a reminder to refresh the baseline, so the ratchet moves up.

use std::process::ExitCode;

use dpu_bench::report::Json;

struct Args {
    current: String,
    baseline: String,
    tolerance_pct: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        current: "BENCH_serving.json".into(),
        baseline: "bench/baseline.json".into(),
        tolerance_pct: 10.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = || it.next().unwrap_or_else(|| panic!("{arg} needs a value"));
        match arg.as_str() {
            "--current" => args.current = take(),
            "--baseline" => args.baseline = take(),
            "--tolerance-pct" => args.tolerance_pct = take().parse().expect("numeric tolerance"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn num(doc: &Json, key: &str, path: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: missing numeric field `{key}`"))
}

fn run() -> Result<(), String> {
    let args = parse_args();
    let current = load(&args.current)?;
    let baseline = load(&args.baseline)?;
    let tol = args.tolerance_pct / 100.0;

    // The bench itself must have verified its outputs against serial.
    if current.get("verified").and_then(Json::as_bool) != Some(true) {
        return Err(format!("{}: `verified` is not true", args.current));
    }
    // Same experiment shape, otherwise the comparison is meaningless.
    for key in ["requests", "shards"] {
        let (c, b) = (
            num(&current, key, &args.current)?,
            num(&baseline, key, &args.baseline)?,
        );
        if c != b {
            return Err(format!(
                "experiment shape changed: `{key}` is {c} but baseline has {b} \
                 — refresh bench/baseline.json in the same commit"
            ));
        }
    }

    // The throughput ratchet. Higher is better for every gated metric.
    let mut failed = false;
    for key in ["simulated_gops", "cache_hit_rate"] {
        let c = num(&current, key, &args.current)?;
        let b = num(&baseline, key, &args.baseline)?;
        let change = if b != 0.0 { (c - b) / b } else { 0.0 };
        let verdict = if change < -tol {
            failed = true;
            "FAIL"
        } else if change > tol {
            "pass (improved — consider refreshing bench/baseline.json)"
        } else {
            "pass"
        };
        println!(
            "bench-gate: {key}: current {c:.4} vs baseline {b:.4} ({:+.1}%) … {verdict}",
            change * 100.0
        );
    }
    if failed {
        return Err(format!(
            "throughput regressed more than {:.0}% — investigate, or update \
             bench/baseline.json if the regression is intended",
            args.tolerance_pct
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("bench-gate: OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("bench-gate: {msg}");
            ExitCode::FAILURE
        }
    }
}
