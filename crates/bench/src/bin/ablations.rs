//! Ablation study of the compiler's design choices (DESIGN.md §4):
//!
//! 1. reordering window (§IV-C) — 1 (off) / 8 / 300 (paper);
//! 2. spill victim policy (§IV-D) — Belady / nearest-next-use / arbitrary;
//! 3. bank allocation (§IV-B) — conflict-aware vs random;
//! 4. interconnect topology (§III-C) — crossbar vs per-layer vs one-PE.
//!
//! Each knob is varied in isolation on two representative workloads, with
//! everything measured in real simulated cycles.

use dpu_bench::{env_scale, load_small_suite, render_table, Workload};
use dpu_core::compiler::{compile, BankPolicy, CompileOptions, SpillPolicy};
use dpu_core::prelude::*;

fn cycles(w: &Workload, cfg: &ArchConfig, opts: &CompileOptions) -> (u64, u64) {
    let c = compile(&w.dag, cfg, opts).unwrap_or_else(|e| panic!("{}: {e}", w.spec.name));
    (
        c.stats.total_cycles,
        c.stats.spill_stores + c.stats.conflicts.copies_inserted,
    )
}

fn main() {
    let scale = env_scale(0.5);
    let workloads: Vec<Workload> = load_small_suite(scale)
        .into_iter()
        .filter(|w| ["tretail", "rdb968"].contains(&w.spec.name))
        .collect();
    let cfg = ArchConfig::min_edp();

    // 1. Reordering window.
    let mut rows = Vec::new();
    for window in [1usize, 8, 64, 300] {
        let opts = CompileOptions {
            window,
            ..Default::default()
        };
        let mut total = 0u64;
        for w in &workloads {
            total += cycles(w, &cfg, &opts).0;
        }
        rows.push(vec![window.to_string(), total.to_string()]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 1: reordering window (§IV-C)",
            &["window", "total cycles"],
            &rows
        )
    );
    println!("expected: window 1 pays a nop for every hazard; 300 is the paper's choice\n");

    // 2. Spill policy (small R to force pressure).
    let tight = ArchConfig::new(3, 64, 16).expect("valid");
    let mut rows = Vec::new();
    for (name, policy) in [
        ("furthest-next-use (Belady)", SpillPolicy::FurthestNextUse),
        ("nearest-next-use", SpillPolicy::NearestNextUse),
        ("arbitrary", SpillPolicy::Arbitrary),
    ] {
        let opts = CompileOptions {
            spill_policy: policy,
            ..Default::default()
        };
        let (mut total, mut traffic) = (0u64, 0u64);
        for w in &workloads {
            let (cy, tr) = cycles(w, &tight, &opts);
            total += cy;
            traffic += tr;
        }
        rows.push(vec![
            name.to_string(),
            total.to_string(),
            traffic.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 2: spill victim policy at R=16 (§IV-D)",
            &["policy", "total cycles", "spill+copy traffic"],
            &rows,
        )
    );
    println!("expected: compile-time lookahead (Belady) minimizes traffic\n");

    // 3. Bank allocation policy.
    let mut rows = Vec::new();
    for (name, policy) in [
        ("conflict-aware (Algorithm 2)", BankPolicy::ConflictAware),
        ("random", BankPolicy::Random),
    ] {
        let opts = CompileOptions {
            bank_policy: policy,
            ..Default::default()
        };
        let (mut total, mut traffic) = (0u64, 0u64);
        for w in &workloads {
            let (cy, tr) = cycles(w, &cfg, &opts);
            total += cy;
            traffic += tr;
        }
        rows.push(vec![
            name.to_string(),
            total.to_string(),
            traffic.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 3: bank allocation (§IV-B)",
            &["policy", "total cycles", "spill+copy traffic"],
            &rows,
        )
    );
    println!();

    // 4. Output interconnect.
    let mut rows = Vec::new();
    for topo in [
        Topology::CrossbarBoth,
        Topology::CrossbarInPerLayerOut,
        Topology::CrossbarInOnePeOut,
    ] {
        let mut c = cfg;
        c.topology = topo;
        let mut total = 0u64;
        for w in &workloads {
            total += cycles(w, &c, &CompileOptions::default()).0;
        }
        rows.push(vec![topo.to_string(), total.to_string()]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 4: output interconnect (§III-C)",
            &["topology", "total cycles"],
            &rows
        )
    );
    println!("(scale {scale}; workloads: tretail, rdb968)");
}
