//! Fig. 14 / Table III: platform comparison. Pass `--large` for the
//! large-PC configuration (Fig. 14(b)).
fn main() {
    let large = std::env::args().any(|a| a == "--large");
    if large {
        print!(
            "{}",
            dpu_bench::experiments::table3_large(dpu_bench::env_scale(0.125))
        );
    } else {
        print!(
            "{}",
            dpu_bench::experiments::table3_small(dpu_bench::env_scale(1.0))
        );
    }
}
