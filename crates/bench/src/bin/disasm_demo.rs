//! Compiles a tiny workload and prints its disassembly — a debugging view
//! of what the compiler emits (`dpu_isa::disasm`).
use dpu_core::isa::disasm;
use dpu_core::prelude::*;
use dpu_core::workloads::pc::{generate_pc, PcParams};

fn main() {
    let dag = generate_pc(&PcParams::with_targets(120, 6), 2);
    let dpu = Dpu::new(ArchConfig::new(2, 8, 16).expect("valid"));
    let compiled = dpu.compile(&dag).expect("compiles");
    println!(
        "{} nodes -> {} instructions on {}:",
        dag.len(),
        compiled.program.len(),
        dpu.config
    );
    print!("{}", disasm::disassemble(&compiled.program));
}
