//! One function per table/figure of the paper's evaluation.
//!
//! Each function regenerates the corresponding result from scratch
//! (workload generation → compile → simulate → measure) and renders the
//! same rows/series the paper reports, returning the text. The binaries in
//! `src/bin/` are one-line wrappers; `all_experiments` runs everything and
//! is the source of EXPERIMENTS.md's measured numbers.

use dpu_core::baselines::cpu::CpuModel;
use dpu_core::baselines::dpu_v1::DpuV1Model;
use dpu_core::baselines::gpu::GpuModel;
use dpu_core::baselines::spatial;
use dpu_core::baselines::spu::SpuModel;
use dpu_core::compiler::{compile, BankPolicy, CompileOptions};
use dpu_core::dse;
use dpu_core::energy;
use dpu_core::prelude::*;
use dpu_core::sim::Machine;
use dpu_core::workloads::suite;

use crate::{
    env_scale, f1, f2, gops, load_large_suite, load_small_suite, measure, render_table, Workload,
};

/// Table I: workload statistics (published vs generated) and compile time
/// on the min-EDP design.
pub fn table1_workloads() -> String {
    let scale = env_scale(1.0);
    let dpu = Dpu::min_edp();
    let mut rows = Vec::new();
    for w in load_small_suite(scale) {
        let stats = w.spec.stats(&w.dag);
        let t0 = std::time::Instant::now();
        let _ = dpu.compile(&w.dag).expect("suite compiles");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            w.spec.class.label().to_string(),
            w.spec.name.to_string(),
            w.spec.published_nodes.to_string(),
            stats.nodes.to_string(),
            w.spec.published_longest_path.to_string(),
            stats.longest_path.to_string(),
            format!("{:.0}", stats.n_over_l),
            f1(ms),
        ]);
    }
    for spec in suite::large_pc_suite() {
        let large_scale = env_scale(0.125);
        let dag = spec.generate_scaled(large_scale);
        let stats = spec.stats(&dag);
        rows.push(vec![
            spec.class.label().to_string(),
            format!("{} (x{large_scale})", spec.name),
            spec.published_nodes.to_string(),
            stats.nodes.to_string(),
            spec.published_longest_path.to_string(),
            stats.longest_path.to_string(),
            format!("{:.0}", stats.n_over_l),
            "-".to_string(),
        ]);
    }
    render_table(
        &format!("Table I: benchmarked DAGs (scale {scale})"),
        &[
            "class",
            "workload",
            "n(paper)",
            "n(ours)",
            "l(paper)",
            "l(ours)",
            "n/l",
            "compile ms",
        ],
        &rows,
    )
}

/// Table II: area and power breakdown of the min-EDP design, next to the
/// paper's published 28nm numbers.
pub fn table2_area_power() -> String {
    let scale = env_scale(1.0);
    let dpu = Dpu::min_edp();
    // Aggregate activity over PC workloads (the paper's Table II annotates
    // switching activity from the same benchmark mix; SpTRSV-heavy mixes
    // shift power toward the data memory).
    let picks = ["tretail", "mnist"];
    let mut act = dpu_core::sim::Activity::default();
    let mut cycles = 0u64;
    for w in load_small_suite(scale) {
        if !picks.contains(&w.spec.name) {
            continue;
        }
        let r = measure(&dpu, &w);
        let a = r.run.activity;
        act.reg_reads += a.reg_reads;
        act.reg_writes += a.reg_writes;
        act.mem_reads += a.mem_reads;
        act.mem_writes += a.mem_writes;
        act.pe_arith_ops += a.pe_arith_ops;
        act.pe_bypass_ops += a.pe_bypass_ops;
        act.execs += a.execs;
        act.crossbar_hops += a.crossbar_hops;
        act.instr_bits_fetched += a.instr_bits_fetched;
        cycles += r.run.cycles;
    }
    let rows_model = energy::table2(&dpu.config, &act, cycles);
    // Paper Table II values (area mm², power mW).
    let paper: &[(&str, f64, f64)] = &[
        ("PEs", 0.13, 11.9),
        ("Pipelining registers", 0.04, 8.0),
        ("Input interconnect", 0.14, 10.0),
        ("Output interconnect", 0.01, 0.5),
        ("Register banks", 0.35, 24.0),
        ("Wr addr generator", 0.03, 7.8),
        ("Instr fetch", 0.06, 7.0),
        ("Decode", 0.04, 2.6),
        ("Control pipelining registers", 0.01, 2.7),
        ("Instruction memory", 1.20, 27.7),
        ("Data memory", 1.20, 6.7),
    ];
    let mut rows = Vec::new();
    let (mut ta, mut tp, mut tap, mut tpp) = (0.0, 0.0, 0.0, 0.0);
    for (row, &(name, pa, pp)) in rows_model.iter().zip(paper) {
        debug_assert_eq!(row.name, name);
        rows.push(vec![
            name.to_string(),
            f2(row.area_mm2),
            f2(pa),
            f1(row.power_mw),
            f1(pp),
        ]);
        ta += row.area_mm2;
        tp += row.power_mw;
        tap += pa;
        tpp += pp;
    }
    rows.push(vec!["TOTAL".into(), f2(ta), f2(tap), f1(tp), f1(tpp)]);
    render_table(
        "Table II: area & power of the min-EDP design (ours vs paper)",
        &["component", "mm2", "mm2(paper)", "mW", "mW(paper)"],
        &rows,
    )
}

/// Table III + Fig. 14(a): small-suite platform comparison.
pub fn table3_small(scale: f64) -> String {
    let dpu = Dpu::min_edp();
    let cpu = CpuModel::default();
    let gpu = GpuModel::default();
    let dpu1 = DpuV1Model::default();
    let mut rows = Vec::new();
    let (mut g2, mut g1, mut gc, mut gg) = (0.0, 0.0, 0.0, 0.0);
    let (mut p2sum, mut n) = (0.0, 0.0);
    for w in load_small_suite(scale) {
        let r = measure(&dpu, &w);
        let v2 = gops(&r.run);
        let v1 = dpu1.evaluate(&w.dag).throughput_gops;
        let c = cpu.evaluate(&w.dag).throughput_gops;
        let g = gpu.evaluate(&w.dag).throughput_gops;
        rows.push(vec![w.spec.name.to_string(), f2(v2), f2(v1), f2(c), f2(g)]);
        g2 += v2;
        g1 += v1;
        gc += c;
        gg += g;
        p2sum += r.metrics.power_w;
        n += 1.0;
    }
    rows.push(vec![
        "MEAN".into(),
        f2(g2 / n),
        f2(g1 / n),
        f2(gc / n),
        f2(gg / n),
    ]);
    let mut out = render_table(
        &format!("Fig. 14(a) / Table III: throughput in GOPS (scale {scale})"),
        &["workload", "DPU-v2", "DPU", "CPU", "GPU"],
        &rows,
    );
    let cpu_gops = gc / n;
    out.push_str(&format!(
        "speedups over CPU — DPU-v2: {:.1}x  DPU: {:.1}x  GPU: {:.2}x (paper: 3.5x / 2.6x / 0.3x)\n",
        g2 / n / cpu_gops,
        g1 / n / cpu_gops,
        gg / n / cpu_gops,
    ));
    // EDP per op computed uniformly from suite-mean power and throughput,
    // matching Table III's aggregation: (P / GOPS) * (1 / GOPS) in pJ*ns.
    let edp = |power_w: f64, gops_v: f64| power_w / gops_v * 1e3 / gops_v;
    out.push_str(&format!(
        "power W — DPU-v2: {:.2} (paper 0.11)  DPU: {:.2} (paper 0.07)  CPU: {} (paper 55)  GPU: {} (paper 98)\n",
        p2sum / n,
        DpuV1Model::default().power_w,
        CpuModel::default().power_w,
        GpuModel::default().power_w,
    ));
    out.push_str(&format!(
        "EDP pJ*ns — DPU-v2: {:.1} (paper 6.0)  DPU: {:.1} (paper 7.1)  CPU: {:.0}k (paper 38k)  GPU: {:.0}k (paper 1000k)\n",
        edp(p2sum / n, g2 / n),
        edp(DpuV1Model::default().power_w, g1 / n),
        edp(CpuModel::default().power_w, gc / n) / 1e3,
        edp(GpuModel::default().power_w, gg / n) / 1e3,
    ));
    out
}

/// Table III + Fig. 14(b): large-PC platform comparison.
pub fn table3_large(scale: f64) -> String {
    let dpu = Dpu::large();
    let cpu = CpuModel::default();
    let gpu = GpuModel::large_config();
    let spu = SpuModel::default();
    let mut rows = Vec::new();
    let (mut g2, mut gs, mut gcs, mut gc, mut gg, mut n) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    for w in load_large_suite(scale) {
        // The paper benchmarks DPU-v2 (L) with 4 batch-parallel cores
        // performing batch execution (§V-C2).
        let compiled = dpu
            .compile(&w.dag)
            .unwrap_or_else(|e| panic!("{}: {e}", w.spec.name));
        let batch: Vec<Vec<f32>> = (0..4)
            .map(|k| {
                crate::inputs_for(&w.spec, &w.dag)
                    .iter()
                    .map(|v| v - 0.001 * k as f32)
                    .collect()
            })
            .collect();
        let b = dpu_core::sim::run_batch(&compiled, &batch, 4)
            .unwrap_or_else(|e| panic!("{}: {e}", w.spec.name));
        let v2 = b.throughput_ops(energy::calib::FREQ_HZ) / 1e9;
        let s = spu.evaluate(&w.dag).throughput_gops;
        let cs = spu.cpu_baseline(&w.dag).throughput_gops;
        let c = cpu.evaluate(&w.dag).throughput_gops;
        let g = gpu.evaluate(&w.dag).throughput_gops;
        rows.push(vec![
            w.spec.name.to_string(),
            f2(v2),
            f2(s),
            f2(cs),
            f2(c),
            f2(g),
        ]);
        g2 += v2;
        gs += s;
        gcs += cs;
        gc += c;
        gg += g;
        n += 1.0;
    }
    rows.push(vec![
        "MEAN".into(),
        f2(g2 / n),
        f2(gs / n),
        f2(gcs / n),
        f2(gc / n),
        f2(gg / n),
    ]);
    let mut out = render_table(
        &format!("Fig. 14(b) / Table III: large PCs, GOPS (scale {scale}, DPU-v2 (L) x4 cores)"),
        &["workload", "DPU-v2(L)", "SPU", "CPU_SPU", "CPU", "GPU"],
        &rows,
    );
    out.push_str(&format!(
        "speedups over CPU_SPU — DPU-v2(L): {:.1}x  SPU: {:.1}x  GPU: {:.1}x (paper: 20.7x / 13.3x / 2.8x)\n",
        g2 / gcs,
        gs / gcs,
        gg / gcs,
    ));
    out
}

/// Fig. 1(c): CPU/GPU throughput vs DAG size.
pub fn fig01_throughput() -> String {
    let scale = env_scale(1.0);
    let cpu = CpuModel::default();
    let gpu = GpuModel::default();
    let mut rows = Vec::new();
    let mut all = load_small_suite(scale);
    all.extend(load_large_suite(env_scale(0.125)));
    all.sort_by_key(|w| w.dag.len());
    for w in &all {
        rows.push(vec![
            w.spec.name.to_string(),
            w.dag.len().to_string(),
            f2(cpu.evaluate(&w.dag).throughput_gops),
            f2(gpu.evaluate(&w.dag).throughput_gops),
        ]);
    }
    let mut out = render_table(
        "Fig. 1(c): CPU/GPU throughput vs DAG size (GOPS)",
        &["workload", "nodes", "CPU", "GPU"],
        &rows,
    );
    out.push_str(
        "paper shape: both far below peak; GPU < CPU below ~100k nodes, GPU > CPU above\n",
    );
    out
}

/// Fig. 3(c): peak utilization of systolic arrays vs PE trees.
pub fn fig03_utilization() -> String {
    let scale = env_scale(0.5);
    let dags: Vec<Dag> = load_small_suite(scale)
        .into_iter()
        .filter(|w| ["tretail", "mnist", "bp_200", "west2021"].contains(&w.spec.name))
        .map(|w| w.dag)
        .collect();
    let mut rows = Vec::new();
    for inputs in [2u32, 4, 8, 16] {
        let depth = inputs.trailing_zeros().max(1);
        let tree: f64 = dags
            .iter()
            .map(|d| spatial::tree_peak_utilization(d, depth))
            .sum::<f64>()
            / dags.len() as f64;
        let syst: f64 = dags
            .iter()
            .map(|d| spatial::systolic_peak_utilization(d, inputs, 64, 9))
            .sum::<f64>()
            / dags.len() as f64;
        rows.push(vec![
            inputs.to_string(),
            format!("{:.0}%", tree * 100.0),
            format!("{:.0}%", syst * 100.0),
        ]);
    }
    let mut out = render_table(
        "Fig. 3(c): peak datapath utilization",
        &["inputs", "tree", "systolic"],
        &rows,
    );
    out.push_str("paper shape: tree stays ~100%, systolic collapses by 8-16 inputs\n");
    out
}

/// Fig. 6(e): bank conflicts per interconnect topology.
pub fn fig06_interconnect() -> String {
    let scale = env_scale(0.5);
    let workloads: Vec<Workload> = load_small_suite(scale)
        .into_iter()
        .filter(|w| ["tretail", "mnist", "bp_200", "rdb968"].contains(&w.spec.name))
        .collect();
    let opts = CompileOptions::default();
    let mut totals: Vec<(Topology, u64, u64)> = Vec::new();
    for topo in [
        Topology::CrossbarBoth,
        Topology::CrossbarInPerLayerOut,
        Topology::CrossbarInOnePeOut,
    ] {
        let mut cfg = ArchConfig::min_edp();
        cfg.topology = topo;
        let (mut conflicts, mut cycles) = (0u64, 0u64);
        for w in &workloads {
            let c = compile(&w.dag, &cfg, &opts)
                .unwrap_or_else(|e| panic!("{}: {topo}: {e}", w.spec.name));
            conflicts += c.stats.conflicts.total();
            cycles += c.stats.total_cycles;
        }
        totals.push((topo, conflicts, cycles));
    }
    // The paper reports conflicts normalized to the crossbar design and
    // the resulting latency overhead ("(b) increases latency by 1%").
    let base_cycles = totals[0].2 as f64;
    let rows: Vec<Vec<String>> = totals
        .iter()
        .map(|&(t, c, cy)| {
            vec![
                t.to_string(),
                c.to_string(),
                cy.to_string(),
                format!("{:+.1}%", (cy as f64 / base_cycles - 1.0) * 100.0),
            ]
        })
        .collect();
    let mut out = render_table(
        "Fig. 6(e): bank conflicts & latency by output-interconnect topology",
        &["topology", "conflicts", "cycles", "latency vs (a)"],
        &rows,
    );
    out.push_str(
        "paper: conflicts (a) 1x, (b) 2.4x, (c) 19x; (b) costs +1% latency, -9% power; (d) not evaluated\n",
    );
    out
}

/// Fig. 7(a): instruction lengths for the example configuration.
pub fn fig07_instr_lengths() -> String {
    use dpu_core::isa::encode::kind_bits;
    use dpu_core::isa::InstrKind;
    let cfg = ArchConfig::new(3, 16, 32).expect("paper example config");
    let paper = [
        (InstrKind::Load, 52u32),
        (InstrKind::Store, 132),
        (InstrKind::StoreK, 56),
        (InstrKind::CopyK, 72),
        (InstrKind::Exec, 272),
        (InstrKind::Nop, 4),
    ];
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&(k, p)| {
            vec![
                k.name().to_string(),
                kind_bits(&cfg, k).to_string(),
                p.to_string(),
            ]
        })
        .collect();
    render_table(
        "Fig. 7(a): instruction lengths in bits (D=3, B=16, R=32)",
        &["instruction", "ours", "paper"],
        &rows,
    )
}

/// Fig. 10(b): bank conflicts, conflict-aware vs random allocation.
pub fn fig10_conflicts() -> String {
    let scale = env_scale(0.5);
    let workloads: Vec<Workload> = load_small_suite(scale)
        .into_iter()
        .filter(|w| ["tretail", "mnist", "nltcs", "bp_200"].contains(&w.spec.name))
        .collect();
    let cfg = ArchConfig::min_edp();
    let mut rows = Vec::new();
    let (mut tot_ours, mut tot_rand) = (0u64, 0u64);
    for w in &workloads {
        let ours = compile(&w.dag, &cfg, &CompileOptions::default())
            .expect("compiles")
            .stats
            .conflicts
            .total();
        let rand_opts = CompileOptions {
            bank_policy: BankPolicy::Random,
            ..Default::default()
        };
        let random = compile(&w.dag, &cfg, &rand_opts)
            .expect("compiles")
            .stats
            .conflicts
            .total();
        rows.push(vec![
            w.spec.name.to_string(),
            ours.to_string(),
            random.to_string(),
            format!("{:.0}x", random as f64 / ours.max(1) as f64),
        ]);
        tot_ours += ours;
        tot_rand += random;
    }
    rows.push(vec![
        "TOTAL".into(),
        tot_ours.to_string(),
        tot_rand.to_string(),
        format!("{:.0}x", tot_rand as f64 / tot_ours.max(1) as f64),
    ]);
    let mut out = render_table(
        "Fig. 10(b): bank conflicts, conflict-aware vs random",
        &["workload", "ours", "random", "ratio"],
        &rows,
    );
    out.push_str("paper: random/ours = 292x\n");
    out
}

/// Fig. 10(c,d): active registers per bank over time, with and without
/// spilling pressure (R=64 vs unconstrained).
pub fn fig10_occupancy() -> String {
    let scale = env_scale(0.5);
    let w = load_small_suite(scale)
        .into_iter()
        .find(|w| w.spec.name == "msnbc")
        .expect("suite contains msnbc");
    let mut out = String::new();
    for (label, r) in [
        ("without spilling (R=512)", 512u32),
        ("with spilling (R=32)", 32),
    ] {
        let cfg = ArchConfig::new(3, 64, r).expect("valid");
        let dpu = Dpu::new(cfg);
        let compiled = dpu.compile(&w.dag).expect("compiles");
        let mut m = Machine::new(cfg);
        for (&(row, col), &v) in compiled.layout.input_slots.iter().zip(&w.inputs) {
            if row != u32::MAX {
                m.poke(row, col, v).expect("in range");
            }
        }
        let total_instrs = compiled.program.instrs.len();
        let step_size = (total_instrs / 40).max(1);
        let mut samples: Vec<(u64, u32, f64)> = Vec::new();
        for (i, ins) in compiled.program.instrs.iter().enumerate() {
            m.step(ins).expect("no hazards");
            if i % step_size == 0 {
                let occ = m.occupancy_per_bank();
                let max = occ.iter().copied().max().unwrap_or(0);
                let mean = occ.iter().sum::<u32>() as f64 / occ.len() as f64;
                samples.push((m.cycle(), max, mean));
            }
        }
        out.push_str(&format!(
            "-- {label}: spills={} peak/bank={} --\n",
            compiled.stats.spill_stores,
            samples.iter().map(|s| s.1).max().unwrap_or(0),
        ));
        out.push_str("cycle  max/bank  mean/bank\n");
        for (c, mx, mean) in samples.iter().step_by(5) {
            out.push_str(&format!("{c:>6} {mx:>8} {mean:>9.1}\n"));
        }
    }
    out.push_str("paper Fig. 10(c,d): balanced occupancy; spilling caps it at R\n");
    out
}

/// Fig. 11: the 48-point design-space exploration.
pub fn fig11_dse() -> String {
    let scale = env_scale(0.12);
    let picks = ["tretail", "mnist", "bp_200", "rdb968"];
    let workloads: Vec<(Dag, Vec<f32>)> = load_small_suite(scale)
        .into_iter()
        .filter(|w| picks.contains(&w.spec.name))
        .map(|w| (w.dag, w.inputs))
        .collect();
    let grid = dse::paper_grid();
    let points = dse::explore(&grid, &workloads, 8).expect("sweep succeeds");
    let mut rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.depth.to_string(),
                p.banks.to_string(),
                p.regs.to_string(),
                f2(p.latency_per_op_ns),
                f1(p.energy_per_op_pj),
                f1(p.edp),
                f2(p.area_mm2),
            ]
        })
        .collect();
    let opt = dse::optima(&points);
    rows.push(vec![
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    for (name, p) in [
        ("min-latency", opt.min_latency),
        ("min-energy", opt.min_energy),
        ("min-EDP", opt.min_edp),
    ] {
        rows.push(vec![
            format!("{name}: D={}", p.depth),
            format!("B={}", p.banks),
            format!("R={}", p.regs),
            f2(p.latency_per_op_ns),
            f1(p.energy_per_op_pj),
            f1(p.edp),
            f2(p.area_mm2),
        ]);
    }
    let mut out = render_table(
        &format!(
            "Fig. 11: design-space exploration (scale {scale}, {} workloads)",
            picks.len()
        ),
        &["D", "B", "R", "ns/op", "pJ/op", "EDP", "mm2"],
        &rows,
    );
    out.push_str("paper optima: min-latency (3,64,128); min-energy (3,16,64); min-EDP (3,64,32)\n");
    out
}

/// Fig. 12: latency-vs-energy view of the same sweep with the min-EDP
/// iso-curve.
pub fn fig12_pareto() -> String {
    let scale = env_scale(0.12);
    let picks = ["tretail", "mnist", "bp_200", "rdb968"];
    let workloads: Vec<(Dag, Vec<f32>)> = load_small_suite(scale)
        .into_iter()
        .filter(|w| picks.contains(&w.spec.name))
        .map(|w| (w.dag, w.inputs))
        .collect();
    let points = dse::explore(&dse::paper_grid(), &workloads, 8).expect("sweep succeeds");
    let opt = dse::optima(&points);
    let min_edp = opt.min_edp.edp;
    let mut rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let on_curve = min_edp / p.energy_per_op_pj; // latency on iso-EDP
            vec![
                format!("({},{},{})", p.depth, p.banks, p.regs),
                f1(p.energy_per_op_pj),
                f2(p.latency_per_op_ns),
                f2(on_curve),
            ]
        })
        .collect();
    rows.sort_by(|a, b| {
        a[1].parse::<f64>()
            .unwrap()
            .partial_cmp(&b[1].parse::<f64>().unwrap())
            .unwrap()
    });
    let mut out = render_table(
        "Fig. 12: energy vs latency with min-EDP iso-curve",
        &["(D,B,R)", "pJ/op", "ns/op", "iso-EDP ns/op"],
        &rows,
    );
    out.push_str(&format!(
        "min-EDP point: (D={}, B={}, R={}), EDP {:.1} pJ*ns\n",
        opt.min_edp.depth, opt.min_edp.banks, opt.min_edp.regs, min_edp
    ));
    out
}

/// Fig. 13: instruction-category breakdown per workload.
pub fn fig13_instr_breakdown() -> String {
    let scale = env_scale(1.0);
    let dpu = Dpu::min_edp();
    let mut rows = Vec::new();
    for w in load_small_suite(scale) {
        let c = dpu.compile(&w.dag).expect("compiles");
        let b = c.program.breakdown();
        let f = b.fractions();
        rows.push(vec![
            w.spec.name.to_string(),
            format!("{:.0}%", f[0] * 100.0),
            format!("{:.0}%", f[1] * 100.0),
            format!("{:.0}%", f[2] * 100.0),
            format!("{:.0}%", f[3] * 100.0),
            format!("{:.0}%", f[4] * 100.0),
            b.total().to_string(),
        ]);
    }
    render_table(
        &format!("Fig. 13: instruction breakdown (scale {scale})"),
        &["workload", "exec", "copy", "load", "store", "nop", "total"],
        &rows,
    )
}

/// §III-B: program-size reduction from the automatic write-address policy.
pub fn autowrite_reduction() -> String {
    let scale = env_scale(0.5);
    let dpu = Dpu::min_edp();
    let mut rows = Vec::new();
    let (mut ours, mut explicit) = (0u64, 0u64);
    for w in load_small_suite(scale) {
        let c = dpu.compile(&w.dag).expect("compiles");
        let a = c.stats.program_bits;
        let b = c.stats.program_bits_explicit;
        rows.push(vec![
            w.spec.name.to_string(),
            a.to_string(),
            b.to_string(),
            format!("{:.0}%", (1.0 - a as f64 / b as f64) * 100.0),
        ]);
        ours += a;
        explicit += b;
    }
    rows.push(vec![
        "TOTAL".into(),
        ours.to_string(),
        explicit.to_string(),
        format!("{:.0}%", (1.0 - ours as f64 / explicit as f64) * 100.0),
    ]);
    let mut out = render_table(
        "Automatic write addressing: program-size reduction (§III-B)",
        &["workload", "bits (auto)", "bits (explicit)", "reduction"],
        &rows,
    );
    out.push_str("paper: ~30% average reduction\n");
    out
}

/// §IV-E: total memory footprint vs a CSR representation.
pub fn footprint_reduction() -> String {
    let scale = env_scale(0.5);
    let dpu = Dpu::min_edp();
    let mut rows = Vec::new();
    let (mut ours, mut csr) = (0u64, 0u64);
    for w in load_small_suite(scale) {
        let c = dpu.compile(&w.dag).expect("compiles");
        let fp = c.stats.footprint;
        rows.push(vec![
            w.spec.name.to_string(),
            (fp.total_bits() / 8).to_string(),
            (fp.csr_bits / 8).to_string(),
            format!("{:.0}%", fp.reduction_vs_csr() * 100.0),
        ]);
        ours += fp.total_bits();
        csr += fp.csr_bits;
    }
    rows.push(vec![
        "TOTAL".into(),
        (ours / 8).to_string(),
        (csr / 8).to_string(),
        format!("{:.0}%", (1.0 - ours as f64 / csr as f64) * 100.0),
    ]);
    let mut out = render_table(
        "Memory footprint vs CSR (§IV-E), bytes",
        &["workload", "ours", "CSR", "reduction"],
        &rows,
    );
    out.push_str("paper: 48% smaller than CSR on average\n");
    out
}

/// Runs every experiment, concatenating the reports.
pub fn all_experiments() -> String {
    let mut out = String::new();
    for (name, f) in experiments() {
        let t0 = std::time::Instant::now();
        out.push_str(&f());
        out.push_str(&format!(
            "[{name} took {:.1}s]\n\n",
            t0.elapsed().as_secs_f64()
        ));
    }
    out
}

/// The experiment registry: `(name, runner)` in paper order.
#[allow(clippy::type_complexity)]
pub fn experiments() -> Vec<(&'static str, fn() -> String)> {
    vec![
        ("fig01_throughput", fig01_throughput as fn() -> String),
        ("fig03_utilization", fig03_utilization),
        ("fig06_interconnect", fig06_interconnect),
        ("fig07_instr_lengths", fig07_instr_lengths),
        ("fig10_conflicts", fig10_conflicts),
        ("fig10_occupancy", fig10_occupancy),
        ("fig11_dse", fig11_dse),
        ("fig12_pareto", fig12_pareto),
        ("fig13_instr_breakdown", fig13_instr_breakdown),
        ("fig14_table3_small", || table3_small(env_scale(1.0))),
        ("fig14_table3_large", || table3_large(env_scale(0.125))),
        ("table1_workloads", table1_workloads),
        ("table2_area_power", table2_area_power),
        ("autowrite_reduction", autowrite_reduction),
        ("footprint_reduction", footprint_reduction),
    ]
}
