//! Criterion benchmarks of the compiler pipeline (Table I's compile-time
//! column): full compilation plus each step in isolation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpu_core::compiler::{compile, step1, step2, CompileOptions};
use dpu_core::prelude::*;
use dpu_core::workloads::pc::{generate_pc, PcParams};

fn bench_compiler(c: &mut Criterion) {
    let dag = generate_pc(&PcParams::with_targets(2_000, 16), 9);
    let (bin, _) = dag.binarize();
    let cfg = ArchConfig::min_edp();
    let opts = CompileOptions::default();

    c.bench_function("compile/full_2k_pc", |b| {
        b.iter(|| compile(&dag, &cfg, &opts).expect("compiles"))
    });

    c.bench_function("compile/step1_blocks", |b| {
        b.iter_batched(
            || vec![false; bin.len()],
            |mut mapped| step1::decompose(&bin, &cfg, None, &mut mapped),
            BatchSize::SmallInput,
        )
    });

    let mut mapped = vec![false; bin.len()];
    let raw = step1::decompose(&bin, &cfg, None, &mut mapped);
    let outputs: Vec<NodeId> = bin.sinks().collect();
    let needs = step2::compute_needs_store(&bin, &raw, &outputs);
    let blocks = step2::place_blocks(&bin, &cfg, raw.clone(), &needs);
    c.bench_function("compile/step2_banks", |b| {
        b.iter(|| {
            step2::assign_banks(
                &bin,
                &cfg,
                &blocks,
                &outputs,
                step2::BankPolicy::ConflictAware,
                7,
            )
        })
    });
}

criterion_group! {
name = benches;
config = Criterion::default()
    .sample_size(10)
    .measurement_time(std::time::Duration::from_secs(2))
    .warm_up_time(std::time::Duration::from_millis(300));
targets = bench_compiler}
criterion_main!(benches);
