//! Criterion benchmarks of instruction encode/decode (the fetch + shifter
//! model of Fig. 7(b)).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpu_core::isa::Program;
use dpu_core::prelude::*;
use dpu_core::workloads::pc::{generate_pc, PcParams};

fn bench_isa(c: &mut Criterion) {
    let dag = generate_pc(&PcParams::with_targets(2_000, 16), 9);
    let dpu = Dpu::min_edp();
    let compiled = dpu.compile(&dag).expect("compiles");
    let program = compiled.program;
    let bytes = program.pack();

    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(program.len() as u64));
    g.bench_function("pack", |b| b.iter(|| program.pack()));
    g.bench_function("unpack", |b| {
        b.iter(|| Program::unpack(program.config, &bytes, program.len()).expect("decodes"))
    });
    g.finish();
}

criterion_group! {
name = benches;
config = Criterion::default()
    .sample_size(10)
    .measurement_time(std::time::Duration::from_secs(2))
    .warm_up_time(std::time::Duration::from_millis(300));
targets = bench_isa}
criterion_main!(benches);
