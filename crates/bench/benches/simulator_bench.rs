//! Criterion benchmarks of the cycle-level simulator: instructions per
//! second executing a compiled PC workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpu_core::prelude::*;
use dpu_core::workloads::pc::{generate_pc, pc_inputs, PcParams};

fn bench_simulator(c: &mut Criterion) {
    let dag = generate_pc(&PcParams::with_targets(2_000, 16), 9);
    let inputs = pc_inputs(&dag, 1);
    let dpu = Dpu::min_edp();
    let compiled = dpu.compile(&dag).expect("compiles");

    let mut g = c.benchmark_group("simulate");
    g.throughput(Throughput::Elements(compiled.program.len() as u64));
    g.bench_function("run_2k_pc", |b| {
        b.iter(|| dpu.execute(&compiled, &inputs).expect("runs"))
    });
    g.bench_function("run_and_verify_2k_pc", |b| {
        b.iter(|| dpu.execute_verified(&compiled, &inputs).expect("verifies"))
    });
    g.finish();
}

criterion_group! {
name = benches;
config = Criterion::default()
    .sample_size(10)
    .measurement_time(std::time::Duration::from_secs(2))
    .warm_up_time(std::time::Duration::from_millis(300));
targets = bench_simulator}
criterion_main!(benches);
