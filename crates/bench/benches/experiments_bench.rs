//! Criterion wrappers around the experiment harness: one benchmark per
//! (fast) table/figure regeneration, so `cargo bench` exercises the same
//! code paths as the experiment binaries. Slow sweeps are represented by
//! a single DSE point evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use dpu_core::dse;
use dpu_core::prelude::*;
use dpu_core::workloads::pc::{generate_pc, pc_inputs, PcParams};

fn bench_experiments(c: &mut Criterion) {
    c.bench_function("experiments/fig07_instr_lengths", |b| {
        b.iter(dpu_bench::experiments::fig07_instr_lengths)
    });

    let dag = generate_pc(&PcParams::with_targets(1_200, 12), 3);
    let inputs = pc_inputs(&dag, 4);
    let workloads = vec![(dag, inputs)];
    let cfg = ArchConfig::new(2, 16, 32).expect("valid");
    c.bench_function("experiments/dse_point", |b| {
        b.iter(|| dse::evaluate_config(&cfg, &workloads).expect("evaluates"))
    });

    let dag2 = generate_pc(&PcParams::with_targets(1_200, 12), 5);
    c.bench_function("experiments/fig03_tree_mapper", |b| {
        b.iter(|| dpu_core::baselines::spatial::tree_peak_utilization(&dag2, 4))
    });
}

criterion_group! {
name = benches;
config = Criterion::default()
    .sample_size(10)
    .measurement_time(std::time::Duration::from_secs(2))
    .warm_up_time(std::time::Duration::from_millis(300));
targets = bench_experiments}
criterion_main!(benches);
